"""Dynamic execution: walking a CFG into a deterministic basic-block trace.

The walker interprets the CFG with a call stack, per-branch loop counters,
Bernoulli conditional outcomes and sticky indirect-target selection — all
driven by a private seeded PRNG, so the same workload always produces the
same trace and every mechanism is evaluated on identical input.

Traces are stored **columnar**: six parallel ``array`` columns (one per
``REC_*`` field) instead of one Python tuple per record. A full-scale
trace is a few flat megabytes of C integers rather than hundreds of
megabytes of boxed tuples, the columns pickle/serialize as raw bytes (the
:mod:`~repro.workloads.tracestore` disk format is exactly
``array.tobytes`` per column), and forked pool workers share them
copy-on-write. Consumers have two views:

* ``trace.columns[REC_KIND]`` etc. — the raw columns, used by the engine's
  hot per-prediction loop (indexed reads, no per-record allocation);
* ``trace.records`` — a zero-copy :class:`TraceRecordView` that behaves
  like the old ``list[tuple]`` (indexing and slicing materialize tuples on
  demand; iteration is a C-level ``zip`` over the columns).

Generation is **streaming**: the walker emits records through a
:class:`TraceBuilder`, a bounded-memory emitter that buffers a small chunk
of records and transposes it into the columns, so peak memory during
generation no longer scales with one live tuple (plus six boxed ints) per
record.
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from operator import itemgetter

from ..config import INSTR_BYTES
from ..errors import WorkloadError
from .cfg import ControlFlowGraph, StaticBlock
from .isa import BranchKind, EntryKind, block_of, blocks_spanned

#: Column indexes of one trace record (also the ``trace.columns`` order).
REC_START = 0     #: basic-block start pc
REC_NINSTR = 1    #: instructions in the block
REC_KIND = 2      #: BranchKind of the terminating branch
REC_TAKEN = 3     #: 1 if the branch redirected the fetch stream
REC_NEXT = 4      #: start pc of the next basic block on the correct path
REC_ENTRY = 5     #: EntryKind — how control arrived at this block

#: One materialized trace record: (start, n_instrs, kind, taken, next_pc,
#: entry_kind). The storage is columnar; this is the view/emit row type.
TraceRecord = tuple[int, int, int, int, int, int]

#: (name, array typecode) per column, in ``REC_*`` order. Typecodes are
#: fixed-width on every supported platform ('q' = int64, 'i' = int32,
#: 'b' = int8), so serialized columns are portable across processes.
COLUMN_SPECS: tuple[tuple[str, str], ...] = (
    ("start", "q"),
    ("ninstr", "i"),
    ("kind", "b"),
    ("taken", "b"),
    ("next", "q"),
    ("entry", "b"),
)

#: Probability that an indirect branch repeats its previous target.
_INDIRECT_STICKINESS = 0.6

#: Call-stack depth cap; deeper calls are treated as tail calls.
_MAX_CALL_DEPTH = 64

#: Records buffered by :class:`TraceBuilder` before a transpose flush.
_EMIT_CHUNK = 16384

_FIELD_GETTERS = tuple(itemgetter(i) for i in range(len(COLUMN_SPECS)))


def _empty_columns() -> tuple[array, ...]:
    return tuple(array(typecode) for _, typecode in COLUMN_SPECS)


class TraceRecordView:
    """Zero-copy, ``list[tuple]``-compatible view over the trace columns.

    Indexing materializes one tuple; slicing materializes a list of tuples
    (only for the requested range); iteration is a C-level ``zip`` over the
    columns. Equality compares the underlying columns without building any
    tuples at all.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: tuple[array, ...]):
        self._columns = columns

    def __len__(self) -> int:
        return len(self._columns[0])

    def __getitem__(self, index: int | slice) -> tuple | list[tuple]:
        if isinstance(index, slice):
            return list(zip(*(col[index] for col in self._columns)))
        return tuple(col[index] for col in self._columns)

    def __iter__(self) -> Iterator[tuple]:
        return zip(*self._columns)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceRecordView):
            return self._columns == other._columns
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                tuple(got) == tuple(want) for got, want in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"TraceRecordView({len(self)} records)"


@dataclass
class Trace:
    """A dynamic basic-block trace over a static CFG (columnar storage)."""

    cfg: ControlFlowGraph
    columns: tuple[array, ...]
    seed: int
    n_instrs: int = 0
    records: TraceRecordView = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.columns) != len(COLUMN_SPECS):
            raise WorkloadError(
                f"trace needs {len(COLUMN_SPECS)} columns, got {len(self.columns)}"
            )
        n = len(self.columns[0])
        if any(len(col) != n for col in self.columns):
            raise WorkloadError("trace columns have unequal lengths")
        if not self.n_instrs:
            self.n_instrs = sum(self.columns[REC_NINSTR])
        self.records = TraceRecordView(self.columns)

    def __len__(self) -> int:
        return len(self.columns[0])

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.records)

    def column(self, index: int) -> array:
        """One raw column by its ``REC_*`` index."""
        return self.columns[index]

    def block(self, record: TraceRecord) -> StaticBlock:
        """The static block behind a record."""
        return self.cfg.blocks[record[REC_START]]

    def summary(self) -> "TraceSummary":
        return summarize(self)


class TraceBuilder:
    """Bounded-memory streaming emitter appending into trace columns.

    Rows are buffered as plain tuples (one append per record — the cheap
    operation) and transposed into the ``array`` columns one chunk at a
    time, so at most :data:`_EMIT_CHUNK` boxed rows are ever live during
    generation regardless of trace length.
    """

    __slots__ = ("_columns", "_buffer")

    def __init__(self) -> None:
        self._columns = _empty_columns()
        self._buffer: list[TraceRecord] = []

    def append(self, record: TraceRecord) -> None:
        """Emit one record row (``REC_*`` order)."""
        self._buffer.append(record)
        if len(self._buffer) >= _EMIT_CHUNK:
            self._flush()

    def extend(self, records: Iterable[tuple]) -> None:
        """Emit many record rows."""
        for record in records:
            self.append(record)

    def _flush(self) -> None:
        buffer = self._buffer
        for column, getter in zip(self._columns, _FIELD_GETTERS):
            column.extend(map(getter, buffer))
        buffer.clear()

    def __len__(self) -> int:
        return len(self._columns[0]) + len(self._buffer)

    def build(self, cfg: ControlFlowGraph, seed: int, n_instrs: int = 0) -> Trace:
        """Finalize into an immutable-by-convention :class:`Trace`."""
        self._flush()
        return Trace(cfg=cfg, columns=self._columns, seed=seed, n_instrs=n_instrs)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate trace statistics used by calibration tests and reports."""

    n_records: int
    n_instrs: int
    avg_bb_instrs: float
    taken_rate: float
    cond_frac: float
    cond_taken_rate: float
    uncond_frac: float
    unique_basic_blocks: int
    unique_cache_blocks: int
    footprint_kb: float
    kind_counts: dict[int, int] = field(default_factory=dict)


def summarize(trace: Trace) -> TraceSummary:
    """Compute :class:`TraceSummary` for ``trace``.

    Columnar aggregation: whole-column passes (``sum``, ``array.count``,
    ``set``) replace the per-record Python loop wherever a field is
    consumed independently.
    """
    col_start = trace.columns[REC_START]
    col_ninstr = trace.columns[REC_NINSTR]
    col_kind = trace.columns[REC_KIND]
    col_taken = trace.columns[REC_TAKEN]

    kind_counts: dict[int, int] = {}
    for kind in BranchKind:
        count = col_kind.count(int(kind))
        if count:
            kind_counts[int(kind)] = count
    taken = col_taken.count(1)  # the column is 0/1 by construction
    cond_kind = int(BranchKind.COND)
    cond = kind_counts.get(cond_kind, 0)
    cond_taken = sum(
        t for k, t in zip(col_kind, col_taken) if k == cond_kind
    )
    unique_bbs = set(col_start)
    unique_blocks: set[int] = set()
    for start, n_instr in zip(col_start, col_ninstr):
        unique_blocks.update(blocks_spanned(start, n_instr))
    n = len(trace)
    return TraceSummary(
        n_records=n,
        n_instrs=trace.n_instrs,
        avg_bb_instrs=trace.n_instrs / n if n else 0.0,
        taken_rate=taken / n if n else 0.0,
        cond_frac=cond / n if n else 0.0,
        cond_taken_rate=cond_taken / cond if cond else 0.0,
        uncond_frac=(n - cond) / n if n else 0.0,
        unique_basic_blocks=len(unique_bbs),
        unique_cache_blocks=len(unique_blocks),
        footprint_kb=len(unique_blocks) * 64 / 1024.0,
        kind_counts=kind_counts,
    )


def _draw_trips(rng: random.Random, mean: float) -> int:
    """Per-site loop trip count: exponential around the mean, clamped.

    Drawn once per loop branch and then *fixed* for the whole trace: real
    loops iterate over stable structure sizes, which is what makes their
    exits history-predictable (TAGE learns them; a bimodal counter cannot).
    The clamp keeps one unlucky draw from letting a single loop dominate a
    short trace.
    """
    trips = int(round(rng.expovariate(1.0 / mean)))
    return max(1, min(trips, int(3 * mean)))


#: Precompiled per-block walk row:
#: (kind, n_instrs, target, fallthrough, bias, loop_mean, corr_src,
#:  corr_invert, indirect_target_pcs, indirect_weights).
_WalkInfo = tuple

#: Pulls the walk-relevant StaticBlock fields out of an instance ``__dict__``
#: in one C call (``fallthrough`` is a property, so it is derived below).
_WALK_FIELDS = itemgetter(
    "kind", "n_instrs", "target", "bias", "loop_mean",
    "corr_src", "corr_invert", "indirect_targets",
)

_NO_TARGETS: tuple[list, list] = ([], [])


def _compile_walk_info(cfg: ControlFlowGraph) -> dict[int, _WalkInfo]:
    """Flatten every StaticBlock into a plain tuple for the walk loop.

    Frozen-dataclass attribute reads cost an attribute-protocol round trip
    each; the walker touches several per record, so one upfront O(blocks)
    pass — one ``itemgetter`` call per block straight off the instance
    dict — pays for itself within the first few thousand records. Indirect
    target pools (rare) are pre-split into parallel (targets, weights)
    lists so each draw skips two list comprehensions.
    """
    info: dict[int, _WalkInfo] = {}
    for pc, blk in cfg.blocks.items():
        (kind, n_instrs, target, bias, loop_mean,
         corr_src, corr_invert, ind) = _WALK_FIELDS(blk.__dict__)
        if ind:
            targets_weights = ([t for t, _ in ind], [w for _, w in ind])
        else:
            targets_weights = _NO_TARGETS
        info[pc] = (
            int(kind),
            n_instrs,
            target,
            pc + n_instrs * INSTR_BYTES,  # == StaticBlock.fallthrough
            bias,
            loop_mean,
            corr_src,
            corr_invert,
            targets_weights[0],
            targets_weights[1],
        )
    return info


def generate_trace(
    cfg: ControlFlowGraph,
    n_instrs: int,
    seed: int = 1,
) -> Trace:
    """Walk ``cfg`` from its entry until ``n_instrs`` instructions execute.

    The walk is deterministic for a given ``(cfg, n_instrs, seed)`` — and
    the PRNG draw sequence is pinned by the golden summary/engine fixtures,
    so representation changes here must never reorder draws. The trace
    always ends on a basic-block boundary, so the final instruction count
    can exceed ``n_instrs`` by at most one block.
    """
    if n_instrs <= 0:
        raise WorkloadError("trace length must be positive")
    rng = random.Random(seed)
    rnd = rng.random
    choices = rng.choices
    info = _compile_walk_info(cfg)

    builder = TraceBuilder()
    buffer = builder._buffer
    append = buffer.append
    flush = builder._flush

    stack: list[int] = []
    loop_remaining: dict[int, int] = {}
    loop_trips: dict[int, int] = {}
    sticky_target: dict[int, int] = {}
    last_outcome: dict[int, int] = {}

    COND = int(BranchKind.COND)
    JUMP = int(BranchKind.JUMP)
    CALL = int(BranchKind.CALL)
    RET = int(BranchKind.RET)
    IND_JUMP = int(BranchKind.IND_JUMP)
    IND_CALL = int(BranchKind.IND_CALL)
    SEQUENTIAL = int(EntryKind.SEQUENTIAL)
    CONDITIONAL = int(EntryKind.CONDITIONAL)
    UNCONDITIONAL = int(EntryKind.UNCONDITIONAL)

    pc = cfg.entry
    executed = 0
    entry_kind = SEQUENTIAL

    while executed < n_instrs:
        blk = info.get(pc)
        if blk is None:
            raise WorkloadError(f"walker reached non-block address {pc:#x}")
        (kind, blk_instrs, target, fallthrough, bias, loop_mean,
         corr_src, corr_invert, ind_targets, ind_weights) = blk
        taken = 1
        if kind == COND:
            if loop_mean > 0:
                remaining = loop_remaining.get(pc)
                if remaining is None:
                    remaining = loop_trips.get(pc)
                    if remaining is None:
                        remaining = _draw_trips(rng, loop_mean)
                        loop_trips[pc] = remaining
                if remaining > 0:
                    taken = 1
                    loop_remaining[pc] = remaining - 1
                else:
                    taken = 0
                    loop_remaining.pop(pc, None)
            elif corr_src:
                src_out = last_outcome.get(corr_src)
                if src_out is None:
                    taken = 1 if rnd() < 0.5 else 0
                else:
                    taken = src_out ^ 1 if corr_invert else src_out
            else:
                taken = 1 if rnd() < bias else 0
            last_outcome[pc] = taken
            next_pc = target if taken else fallthrough
        elif kind == JUMP:
            next_pc = target
        elif kind == CALL:
            next_pc = target
            if len(stack) < _MAX_CALL_DEPTH:
                stack.append(fallthrough)
        elif kind == IND_CALL or kind == IND_JUMP:
            previous = sticky_target.get(pc)
            if previous is not None and rnd() < _INDIRECT_STICKINESS:
                next_pc = previous
            else:
                next_pc = choices(ind_targets, weights=ind_weights, k=1)[0]
                sticky_target[pc] = next_pc
            if kind == IND_CALL and len(stack) < _MAX_CALL_DEPTH:
                stack.append(fallthrough)
        elif kind == RET:
            next_pc = stack.pop() if stack else cfg.entry
        else:  # pragma: no cover - exhaustive over BranchKind
            raise WorkloadError(f"unhandled branch kind {kind}")

        append((pc, blk_instrs, kind, taken, next_pc, entry_kind))
        if len(buffer) >= _EMIT_CHUNK:
            flush()
        executed += blk_instrs

        if not taken:
            entry_kind = SEQUENTIAL
        elif kind == COND:
            entry_kind = CONDITIONAL
        else:
            entry_kind = UNCONDITIONAL
        pc = next_pc

    return builder.build(cfg, seed, n_instrs=executed)


def taken_conditional_distances(trace: Trace) -> dict[int, int]:
    """Histogram of taken-conditional jump distances in cache blocks.

    This is the Figure 4 metric: for every dynamically taken conditional
    branch, the distance between the branch instruction's cache block and
    its target's cache block.
    """
    histogram: dict[int, int] = {}
    blocks = trace.cfg.blocks
    cond_kind = int(BranchKind.COND)
    starts = trace.columns[REC_START]
    kinds = trace.columns[REC_KIND]
    takens = trace.columns[REC_TAKEN]
    nexts = trace.columns[REC_NEXT]
    for start, kind, taken, next_pc in zip(starts, kinds, takens, nexts):
        if kind != cond_kind or not taken:
            continue
        branch_pc = blocks[start].branch_pc
        distance = abs(block_of(next_pc) - block_of(branch_pc))
        histogram[distance] = histogram.get(distance, 0) + 1
    return histogram
