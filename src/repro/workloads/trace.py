"""Dynamic execution: walking a CFG into a deterministic basic-block trace.

The walker interprets the CFG with a call stack, per-branch loop counters,
Bernoulli conditional outcomes and sticky indirect-target selection — all
driven by a private seeded PRNG, so the same workload always produces the
same trace and every mechanism is evaluated on identical input.

Trace records are plain tuples for speed; the ``REC_*`` index constants
name their fields.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import WorkloadError
from .cfg import ControlFlowGraph, StaticBlock
from .isa import BranchKind, EntryKind, block_of, blocks_spanned

#: Tuple-field indexes of one trace record.
REC_START = 0     #: basic-block start pc
REC_NINSTR = 1    #: instructions in the block
REC_KIND = 2      #: BranchKind of the terminating branch
REC_TAKEN = 3     #: 1 if the branch redirected the fetch stream
REC_NEXT = 4      #: start pc of the next basic block on the correct path
REC_ENTRY = 5     #: EntryKind — how control arrived at this block

#: One trace record: (start, n_instrs, kind, taken, next_pc, entry_kind).
TraceRecord = tuple[int, int, int, int, int, int]

#: Probability that an indirect branch repeats its previous target.
_INDIRECT_STICKINESS = 0.6

#: Call-stack depth cap; deeper calls are treated as tail calls.
_MAX_CALL_DEPTH = 64


@dataclass
class Trace:
    """A dynamic basic-block trace over a static CFG."""

    cfg: ControlFlowGraph
    records: list[TraceRecord]
    seed: int
    n_instrs: int = 0

    def __post_init__(self) -> None:
        if not self.n_instrs:
            self.n_instrs = sum(r[REC_NINSTR] for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def block(self, record: TraceRecord) -> StaticBlock:
        """The static block behind a record."""
        return self.cfg.blocks[record[REC_START]]

    def summary(self) -> "TraceSummary":
        return summarize(self)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate trace statistics used by calibration tests and reports."""

    n_records: int
    n_instrs: int
    avg_bb_instrs: float
    taken_rate: float
    cond_frac: float
    cond_taken_rate: float
    uncond_frac: float
    unique_basic_blocks: int
    unique_cache_blocks: int
    footprint_kb: float
    kind_counts: dict[int, int] = field(default_factory=dict)


def summarize(trace: Trace) -> TraceSummary:
    """Compute :class:`TraceSummary` for ``trace``."""
    kind_counts: dict[int, int] = {}
    taken = 0
    cond = 0
    cond_taken = 0
    unique_bbs: set[int] = set()
    unique_blocks: set[int] = set()
    for rec in trace.records:
        kind = rec[REC_KIND]
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        taken += rec[REC_TAKEN]
        if kind == BranchKind.COND:
            cond += 1
            cond_taken += rec[REC_TAKEN]
        unique_bbs.add(rec[REC_START])
        unique_blocks.update(blocks_spanned(rec[REC_START], rec[REC_NINSTR]))
    n = len(trace.records)
    return TraceSummary(
        n_records=n,
        n_instrs=trace.n_instrs,
        avg_bb_instrs=trace.n_instrs / n if n else 0.0,
        taken_rate=taken / n if n else 0.0,
        cond_frac=cond / n if n else 0.0,
        cond_taken_rate=cond_taken / cond if cond else 0.0,
        uncond_frac=(n - cond) / n if n else 0.0,
        unique_basic_blocks=len(unique_bbs),
        unique_cache_blocks=len(unique_blocks),
        footprint_kb=len(unique_blocks) * 64 / 1024.0,
        kind_counts=kind_counts,
    )


def _draw_trips(rng: random.Random, mean: float) -> int:
    """Per-site loop trip count: exponential around the mean, clamped.

    Drawn once per loop branch and then *fixed* for the whole trace: real
    loops iterate over stable structure sizes, which is what makes their
    exits history-predictable (TAGE learns them; a bimodal counter cannot).
    The clamp keeps one unlucky draw from letting a single loop dominate a
    short trace.
    """
    trips = int(round(rng.expovariate(1.0 / mean)))
    return max(1, min(trips, int(3 * mean)))


def generate_trace(
    cfg: ControlFlowGraph,
    n_instrs: int,
    seed: int = 1,
) -> Trace:
    """Walk ``cfg`` from its entry until ``n_instrs`` instructions execute.

    The walk is deterministic for a given ``(cfg, n_instrs, seed)``. The
    trace always ends on a basic-block boundary, so the final instruction
    count can exceed ``n_instrs`` by at most one block.
    """
    if n_instrs <= 0:
        raise WorkloadError("trace length must be positive")
    rng = random.Random(seed)
    blocks = cfg.blocks
    records: list[TraceRecord] = []
    append = records.append

    stack: list[int] = []
    loop_remaining: dict[int, int] = {}
    loop_trips: dict[int, int] = {}
    sticky_target: dict[int, int] = {}
    last_outcome: dict[int, int] = {}

    pc = cfg.entry
    executed = 0
    entry_kind = int(EntryKind.SEQUENTIAL)

    while executed < n_instrs:
        blk = blocks.get(pc)
        if blk is None:
            raise WorkloadError(f"walker reached non-block address {pc:#x}")
        kind = blk.kind
        taken = 1
        if kind == BranchKind.COND:
            if blk.loop_mean > 0:
                remaining = loop_remaining.get(pc)
                if remaining is None:
                    remaining = loop_trips.get(pc)
                    if remaining is None:
                        remaining = _draw_trips(rng, blk.loop_mean)
                        loop_trips[pc] = remaining
                if remaining > 0:
                    taken = 1
                    loop_remaining[pc] = remaining - 1
                else:
                    taken = 0
                    loop_remaining.pop(pc, None)
            elif blk.corr_src:
                src_out = last_outcome.get(blk.corr_src)
                if src_out is None:
                    taken = 1 if rng.random() < 0.5 else 0
                else:
                    taken = src_out ^ 1 if blk.corr_invert else src_out
            else:
                taken = 1 if rng.random() < blk.bias else 0
            last_outcome[pc] = taken
            next_pc = blk.target if taken else blk.fallthrough
        elif kind == BranchKind.JUMP:
            next_pc = blk.target
        elif kind == BranchKind.CALL:
            next_pc = blk.target
            if len(stack) < _MAX_CALL_DEPTH:
                stack.append(blk.fallthrough)
        elif kind == BranchKind.IND_CALL:
            next_pc = _choose_indirect(rng, blk, sticky_target)
            if len(stack) < _MAX_CALL_DEPTH:
                stack.append(blk.fallthrough)
        elif kind == BranchKind.IND_JUMP:
            next_pc = _choose_indirect(rng, blk, sticky_target)
        elif kind == BranchKind.RET:
            next_pc = stack.pop() if stack else cfg.entry
        else:  # pragma: no cover - exhaustive over BranchKind
            raise WorkloadError(f"unhandled branch kind {kind}")

        append((pc, blk.n_instrs, int(kind), taken, next_pc, entry_kind))
        executed += blk.n_instrs

        if not taken:
            entry_kind = int(EntryKind.SEQUENTIAL)
        elif kind == BranchKind.COND:
            entry_kind = int(EntryKind.CONDITIONAL)
        else:
            entry_kind = int(EntryKind.UNCONDITIONAL)
        pc = next_pc

    return Trace(cfg=cfg, records=records, seed=seed, n_instrs=executed)


def _choose_indirect(
    rng: random.Random, blk: StaticBlock, sticky: dict[int, int]
) -> int:
    """Sticky weighted choice among an indirect branch's targets."""
    previous = sticky.get(blk.start)
    if previous is not None and rng.random() < _INDIRECT_STICKINESS:
        return previous
    targets = [t for t, _ in blk.indirect_targets]
    weights = [w for _, w in blk.indirect_targets]
    choice = rng.choices(targets, weights=weights, k=1)[0]
    sticky[blk.start] = choice
    return choice


def taken_conditional_distances(trace: Trace) -> dict[int, int]:
    """Histogram of taken-conditional jump distances in cache blocks.

    This is the Figure 4 metric: for every dynamically taken conditional
    branch, the distance between the branch instruction's cache block and
    its target's cache block.
    """
    histogram: dict[int, int] = {}
    blocks = trace.cfg.blocks
    for rec in trace.records:
        if rec[REC_KIND] != BranchKind.COND or not rec[REC_TAKEN]:
            continue
        branch_pc = blocks[rec[REC_START]].branch_pc
        distance = abs(block_of(rec[REC_NEXT]) - block_of(branch_pc))
        histogram[distance] = histogram.get(distance, 0) + 1
    return histogram
