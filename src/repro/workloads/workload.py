"""High-level workload facade: profile + built CFG + dynamic trace.

:func:`load_workload` is the main entry point used by the simulator API,
experiments and examples. Three layers are checked in order, mirroring the
result-side :class:`repro.runtime.ExperimentRuntime`:

1. an **in-process memo**, keyed by the *content digest* of the frozen
   profile tree plus the trace length — never by profile name, so a
   caller-constructed profile that shares a name with a stock one can
   never be served the wrong build;
2. an optional **persistent trace store**
   (:class:`~repro.workloads.tracestore.TraceStore`) shared across
   processes and pool workers — a cold full-scale sweep builds each
   workload once on disk instead of once per worker;
3. an actual build: :func:`~repro.workloads.builder.build_cfg` plus the
   streaming trace walker.

The store directory resolves from :func:`configure_trace_store`, else the
``REPRO_TRACE_STORE`` environment variable, else ``REPRO_CACHE_DIR`` (the
same directory the result cache uses — the two subsystems occupy disjoint
schema-tag subdirectories). With none of those set, builds stay in-memory
only, exactly as before.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from ..envopts import env_str, read_env
from .builder import build_cfg
from .cfg import ControlFlowGraph
from .profiles import WorkloadProfile, get_profile
from .trace import Trace, generate_trace
from .tracestore import TraceStore, profile_digest, trace_seed


@dataclass(frozen=True)
class Workload:
    """A ready-to-simulate workload."""

    profile: WorkloadProfile
    cfg: ControlFlowGraph
    trace: Trace

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def warmup_instrs(self) -> int:
        """Instructions excluded from measurement at the start of the trace."""
        return int(self.trace.n_instrs * self.profile.warmup_frac)


#: Keys are (profile content digest, trace length) — see module docstring.
_CACHE: dict[tuple[str, int], Workload] = {}

#: Cap on memoized workloads; builds are deterministic so eviction is safe.
_CACHE_LIMIT = 32

#: Profiles are frozen/hashable and digesting walks the whole tree, so the
#: digest itself is memoized by profile equality.
_profile_digest_cached = lru_cache(maxsize=256)(profile_digest)


# ---------------------------------------------------------------------------
# Persistent trace-store resolution
# ---------------------------------------------------------------------------

_UNSET = object()

#: Explicit override from :func:`configure_trace_store` (None = disabled).
_STORE_DIR: object = _UNSET

#: One TraceStore instance per directory, so hit/miss/store counters
#: aggregate per process and repeated lookups reuse the resolved root.
_STORES: dict[str, TraceStore] = {}


def configure_trace_store(cache_dir: str | os.PathLike | None) -> None:
    """Pin (or, with ``None``, disable) the persistent trace store.

    Overrides the ``REPRO_TRACE_STORE``/``REPRO_CACHE_DIR`` environment
    resolution for this process; forked pool workers inherit the setting.
    """
    global _STORE_DIR
    _STORE_DIR = None if cache_dir is None else os.fspath(cache_dir)


def reset_trace_store() -> None:
    """Return to environment-variable resolution (tests use this)."""
    global _STORE_DIR
    _STORE_DIR = _UNSET


def trace_store_dir() -> str | None:
    """The effective store directory (explicit override, else environment).

    ``REPRO_TRACE_STORE`` set to the empty string means *explicitly
    disabled* (no fallback to ``REPRO_CACHE_DIR``) — that is how a parent
    process propagates ``configure_trace_store(None)`` to spawn-started
    pool workers, which would otherwise re-enable the store from
    ``REPRO_CACHE_DIR``.
    """
    if _STORE_DIR is _UNSET:
        env = read_env("REPRO_TRACE_STORE")
        if env is not None:
            return env or None
        return env_str("REPRO_CACHE_DIR")
    return _STORE_DIR


def trace_store_env_value() -> str | None:
    """What a parent should export as ``REPRO_TRACE_STORE`` for children.

    The explicitly configured directory, ``""`` for an explicit disable,
    or ``None`` when resolution is environment-driven anyway (children
    inherit the same environment, so there is nothing to export).
    """
    if _STORE_DIR is _UNSET:
        return None
    return _STORE_DIR or ""


def get_trace_store() -> TraceStore | None:
    """The persistent workload store for this process, if configured."""
    cache_dir = trace_store_dir()
    if not cache_dir:
        return None
    store = _STORES.get(cache_dir)
    if store is None:
        store = _STORES[cache_dir] = TraceStore(cache_dir)
    return store


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


def load_workload(
    profile: WorkloadProfile | str,
    n_instrs: int | None = None,
    scale: float = 1.0,
) -> Workload:
    """Build (or fetch from cache) the workload for ``profile``.

    ``scale`` shrinks footprint and trace length together — used by tests
    and quick benchmark modes. ``n_instrs`` overrides the (scaled) default
    trace length. Scale needs no separate key component: scaling rewrites
    profile fields, which changes the content digest.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if scale != 1.0:
        profile = profile.scaled(scale)
    length = n_instrs if n_instrs is not None else profile.default_trace_instrs

    digest = _profile_digest_cached(profile)
    key = (digest, length)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    store = get_trace_store()
    built = store.get(profile, length, digest=digest) if store is not None else None
    if built is not None:
        cfg, trace = built
    else:
        cfg = build_cfg(profile)
        trace = generate_trace(cfg, length, seed=trace_seed(profile))
        if store is not None:
            store.put(profile, length, cfg, trace, digest=digest)

    workload = Workload(profile=profile, cfg=cfg, trace=trace)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = workload
    return workload


def clear_workload_cache() -> None:
    """Drop all memoized workloads (tests use this to bound memory)."""
    _CACHE.clear()
