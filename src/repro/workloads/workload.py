"""High-level workload facade: profile + built CFG + dynamic trace.

:func:`load_workload` is the main entry point used by the simulator API,
experiments and examples. Built workloads are memoized per process because
CFG construction and trace generation are deterministic and every mechanism
must run on identical input.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import build_cfg
from .cfg import ControlFlowGraph
from .profiles import WorkloadProfile, get_profile
from .trace import Trace, generate_trace


@dataclass(frozen=True)
class Workload:
    """A ready-to-simulate workload."""

    profile: WorkloadProfile
    cfg: ControlFlowGraph
    trace: Trace

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def warmup_instrs(self) -> int:
        """Instructions excluded from measurement at the start of the trace."""
        return int(self.trace.n_instrs * self.profile.warmup_frac)


_CACHE: dict[tuple[str, float, int], Workload] = {}

#: Cap on memoized workloads; builds are deterministic so eviction is safe.
_CACHE_LIMIT = 32


def load_workload(
    profile: WorkloadProfile | str,
    n_instrs: int | None = None,
    scale: float = 1.0,
) -> Workload:
    """Build (or fetch from cache) the workload for ``profile``.

    ``scale`` shrinks footprint and trace length together — used by tests
    and quick benchmark modes. ``n_instrs`` overrides the (scaled) default
    trace length.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if scale != 1.0:
        profile = profile.scaled(scale)
    length = n_instrs if n_instrs is not None else profile.default_trace_instrs

    key = (profile.name, scale, length)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    cfg = build_cfg(profile)
    trace = generate_trace(cfg, length, seed=profile.seed * 7919 + 1)
    workload = Workload(profile=profile, cfg=cfg, trace=trace)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = workload
    return workload


def clear_workload_cache() -> None:
    """Drop all memoized workloads (tests use this to bound memory)."""
    _CACHE.clear()
