"""Synthetic server workloads: profiles, CFG builder and trace walker.

This subpackage substitutes for the paper's Flexus-captured commercial
workloads (see DESIGN.md section 2). The public surface is:

* :func:`load_workload` / :class:`Workload` — build a ready-to-simulate
  workload from a named profile,
* :data:`ALL_PROFILES`, :func:`get_profile` — the six Table II equivalents,
* :class:`ControlFlowGraph` / :func:`build_cfg` — the static program model,
* :func:`generate_trace` / :class:`Trace` — deterministic dynamic traces.
"""

from .builder import build_cfg, reachable_blocks
from .cfg import ControlFlowGraph, Function, StaticBlock
from .isa import BranchKind, EntryKind
from .profiles import (
    ALL_PROFILES,
    APACHE,
    DB2,
    NUTCH,
    ORACLE,
    STREAMING,
    ZEUS,
    WorkloadProfile,
    get_profile,
    profile_names,
)
from .trace import (
    REC_ENTRY,
    REC_KIND,
    REC_NEXT,
    REC_NINSTR,
    REC_START,
    REC_TAKEN,
    Trace,
    TraceSummary,
    generate_trace,
    summarize,
    taken_conditional_distances,
)
from .workload import Workload, clear_workload_cache, load_workload

__all__ = [
    "ALL_PROFILES",
    "APACHE",
    "DB2",
    "NUTCH",
    "ORACLE",
    "STREAMING",
    "ZEUS",
    "BranchKind",
    "ControlFlowGraph",
    "EntryKind",
    "Function",
    "StaticBlock",
    "Trace",
    "TraceSummary",
    "Workload",
    "WorkloadProfile",
    "REC_ENTRY",
    "REC_KIND",
    "REC_NEXT",
    "REC_NINSTR",
    "REC_START",
    "REC_TAKEN",
    "build_cfg",
    "clear_workload_cache",
    "generate_trace",
    "get_profile",
    "load_workload",
    "profile_names",
    "reachable_blocks",
    "summarize",
    "taken_conditional_distances",
]
