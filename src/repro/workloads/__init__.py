"""Synthetic server workloads: profiles, CFG builder, traces and the store.

This subpackage substitutes for the paper's Flexus-captured commercial
workloads (see DESIGN.md section 2). The public surface is:

* :func:`load_workload` / :class:`Workload` — build a ready-to-simulate
  workload from a named profile (memoized by content digest, optionally
  persisted via the trace store),
* :data:`ALL_PROFILES` (six Table II equivalents),
  :data:`EXTENDED_PROFILES` (four extra scenarios), :func:`workload_set` /
  ``REPRO_WORKLOAD_SET``, :func:`get_profile`,
* :class:`ControlFlowGraph` / :func:`build_cfg` — the static program model,
* :func:`generate_trace` / :class:`Trace` — deterministic columnar traces,
* :class:`TraceStore` / :func:`profile_digest` — the persistent
  content-addressed workload store (``python -m repro.workloads`` is its
  lifecycle CLI).
"""

from .builder import build_cfg, reachable_blocks
from .cfg import ControlFlowGraph, Function, StaticBlock
from .isa import BranchKind, EntryKind
from .profiles import (
    ALL_PROFILES,
    APACHE,
    COMPILERPASS,
    DB2,
    EXTENDED_PROFILES,
    INTERP,
    MICRORPC,
    MLSERVE,
    NUTCH,
    ORACLE,
    PROFILE_SETS,
    STREAMING,
    ZEUS,
    WorkloadProfile,
    get_profile,
    profile_names,
    workload_set,
)
from .trace import (
    COLUMN_SPECS,
    REC_ENTRY,
    REC_KIND,
    REC_NEXT,
    REC_NINSTR,
    REC_START,
    REC_TAKEN,
    Trace,
    TraceBuilder,
    TraceRecordView,
    TraceSummary,
    generate_trace,
    summarize,
    taken_conditional_distances,
)
from .tracestore import (
    TRACE_SCHEMA_TAG,
    TraceStore,
    TraceStoreTagInfo,
    profile_digest,
    prune_trace_store,
    scan_trace_store,
)
from .workload import (
    Workload,
    clear_workload_cache,
    configure_trace_store,
    get_trace_store,
    load_workload,
    reset_trace_store,
)

__all__ = [
    "ALL_PROFILES",
    "APACHE",
    "COMPILERPASS",
    "DB2",
    "EXTENDED_PROFILES",
    "INTERP",
    "MICRORPC",
    "MLSERVE",
    "NUTCH",
    "ORACLE",
    "PROFILE_SETS",
    "STREAMING",
    "ZEUS",
    "BranchKind",
    "COLUMN_SPECS",
    "ControlFlowGraph",
    "EntryKind",
    "Function",
    "StaticBlock",
    "TRACE_SCHEMA_TAG",
    "Trace",
    "TraceBuilder",
    "TraceRecordView",
    "TraceStore",
    "TraceStoreTagInfo",
    "TraceSummary",
    "Workload",
    "WorkloadProfile",
    "REC_ENTRY",
    "REC_KIND",
    "REC_NEXT",
    "REC_NINSTR",
    "REC_START",
    "REC_TAKEN",
    "build_cfg",
    "clear_workload_cache",
    "configure_trace_store",
    "generate_trace",
    "get_profile",
    "get_trace_store",
    "load_workload",
    "profile_digest",
    "profile_names",
    "prune_trace_store",
    "reachable_blocks",
    "reset_trace_store",
    "scan_trace_store",
    "summarize",
    "taken_conditional_distances",
    "workload_set",
]
