"""Workload-layer CLI: profile inspection and trace-store lifecycle.

Usage::

    python -m repro.workloads list        [--set paper|extended|all]
    python -m repro.workloads show        <profile>
    python -m repro.workloads summarize   <profile> [--scale S] [--length N]
    python -m repro.workloads store-list  [--cache-dir DIR]
    python -m repro.workloads store-prune [--cache-dir DIR] [--schema-tag TAG]
                                          [--dry-run]

``list`` tabulates a profile set (default: the ``REPRO_WORKLOAD_SET``
selection); ``show`` dumps every parameter of one profile plus its content
digest; ``summarize`` builds the workload and prints its
:class:`~repro.workloads.trace.TraceSummary` calibration statistics — the
numbers the golden summary fixtures pin.

``store-list``/``store-prune`` mirror the ``python -m repro.runtime``
result-cache lifecycle for the persistent workload store: schema-tag
directories with record counts and sizes, stale tags pruned. The cache
directory comes from ``--cache-dir`` or ``REPRO_TRACE_STORE``/
``REPRO_CACHE_DIR`` — the same resolution :func:`load_workload` uses.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .profiles import PROFILE_SETS, get_profile, workload_set
from .tracestore import (
    TRACE_SCHEMA_TAG,
    profile_digest,
    prune_trace_store,
    scan_trace_store,
)
from .workload import trace_store_dir


def _fmt_size(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _resolve_cache_dir(arg: str | None) -> str:
    # Same resolution load_workload uses, so the CLI always inspects the
    # directory builds actually go to.
    cache_dir = arg or trace_store_dir()
    if not cache_dir:
        raise SystemExit(
            "no store directory: pass --cache-dir or set "
            "REPRO_TRACE_STORE/REPRO_CACHE_DIR"
        )
    return cache_dir


# ------------------------------------------------------------------ profiles


def _cmd_list(args: argparse.Namespace) -> int:
    profiles = workload_set(args.set)
    print(f"{'name':<14s} {'kb':>5s} {'layers':>6s} {'txn':>4s} "
          f"{'ind_call':>8s} {'ind_jump':>8s} {'avg_bb':>6s}  description")
    for p in profiles:
        print(
            f"{p.name:<14s} {p.code_kb:>5d} {p.layers:>6d} "
            f"{p.n_transaction_types:>4d} {p.indirect_call_frac:>8.2f} "
            f"{p.indirect_jump_frac:>8.2f} {p.avg_bb_instrs:>6.1f}  "
            f"{p.description}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    print(f"profile {profile.name} (digest {profile_digest(profile)[:16]})")
    for field in dataclasses.fields(profile):
        print(f"  {field.name:<22s} = {getattr(profile, field.name)!r}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    # Import here: summarize needs the full facade, the other commands don't.
    from .workload import load_workload

    profile = get_profile(args.profile)
    workload = load_workload(profile, n_instrs=args.length, scale=args.scale)
    s = workload.trace.summary()
    print(
        f"workload {workload.name} (scale {args.scale}, "
        f"{workload.trace.n_instrs} instrs)"
    )
    for name in (
        "n_records",
        "n_instrs",
        "avg_bb_instrs",
        "taken_rate",
        "cond_frac",
        "cond_taken_rate",
        "uncond_frac",
        "unique_basic_blocks",
        "unique_cache_blocks",
        "footprint_kb",
    ):
        value = getattr(s, name)
        shown = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"  {name:<22s} = {shown}")
    return 0


# ----------------------------------------------------------------- the store


def _cmd_store_list(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    infos = scan_trace_store(cache_dir)
    print(f"trace store at {cache_dir} (current tag: {TRACE_SCHEMA_TAG})")
    if not infos:
        print("  empty")
        return 0
    stale_records = 0
    for info in infos:
        marker = "current" if info.current else "stale"
        print(
            f"  {info.tag:<32s} {info.records:6d} workloads  "
            f"{_fmt_size(info.size_bytes):>10s}  [{marker}]"
        )
        if not info.current:
            stale_records += info.records
    if stale_records:
        print(
            f"  {stale_records} stale workloads reclaimable via "
            f"`python -m repro.workloads store-prune`"
        )
    return 0


def _cmd_store_prune(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    targets = prune_trace_store(cache_dir, schema_tag=args.schema_tag, dry_run=True)
    if not targets:
        target = args.schema_tag or "stale tags"
        print(f"nothing to prune ({target}) in {cache_dir}")
        return 0
    if args.dry_run:
        removed = targets
    else:
        removed = prune_trace_store(cache_dir, schema_tag=args.schema_tag)
    verb = "would remove" if args.dry_run else "removed"
    for info in removed:
        print(
            f"{verb} {info.tag}: {info.records} workloads, "
            f"{_fmt_size(info.size_bytes)}"
        )
    failed = {t.tag for t in targets} - {r.tag for r in removed}
    for tag in sorted(failed):
        print(f"failed to remove {tag} (permissions?)", file=sys.stderr)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="inspect workload profiles and the persistent trace store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="tabulate a workload profile set")
    p_list.add_argument(
        "--set",
        choices=sorted(PROFILE_SETS),
        help="profile set (default: REPRO_WORKLOAD_SET or 'paper')",
    )
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="dump every parameter of one profile")
    p_show.add_argument("profile")
    p_show.set_defaults(func=_cmd_show)

    p_sum = sub.add_parser(
        "summarize", help="build a workload and print its trace calibration stats"
    )
    p_sum.add_argument("profile")
    p_sum.add_argument("--scale", type=float, default=1.0)
    p_sum.add_argument("--length", type=int, default=None, help="trace instructions")
    p_sum.set_defaults(func=_cmd_summarize)

    p_slist = sub.add_parser("store-list", help="show trace-store tags and sizes")
    p_slist.add_argument("--cache-dir", help="store directory (or env)")
    p_slist.set_defaults(func=_cmd_store_list)

    p_sprune = sub.add_parser("store-prune", help="delete stale trace-store tags")
    p_sprune.add_argument("--cache-dir", help="store directory (or env)")
    p_sprune.add_argument(
        "--schema-tag",
        help="prune exactly this tag instead of every non-current tag",
    )
    p_sprune.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    p_sprune.set_defaults(func=_cmd_store_prune)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
