"""Static control-flow graph of a synthetic program.

A program is a contiguous code layout of *functions*, each a contiguous run
of *basic blocks*. A basic block is a straight-line instruction sequence
whose final instruction is a branch (the paper's — and Yeh & Patt's —
basic-block-BTB definition). The CFG carries both the structural facts the
front-end hardware can observe (addresses, branch kinds, primary targets)
and the behavioural model the trace walker uses (branch biases, loop trip
counts, indirect target sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import INSTR_BYTES
from ..errors import WorkloadError
from .isa import BranchKind, block_of


@dataclass(frozen=True)
class StaticBlock:
    """One basic block: layout plus the behaviour of its terminating branch.

    ``target`` is the *primary* static target: the taken target for direct
    branches, the most likely target for indirect branches, and ``0`` for
    returns (whose target comes from the call stack).
    """

    start: int
    n_instrs: int
    kind: BranchKind
    target: int
    func_id: int
    #: P(taken) for Bernoulli conditional branches (ignored for loops/patterns).
    bias: float = 0.5
    #: Mean trip count when this is a loop back-edge branch (0 = not a loop).
    loop_mean: float = 0.0
    #: (target_pc, weight) alternatives for indirect branches.
    indirect_targets: tuple[tuple[int, float], ...] = ()
    #: History-correlated branches: outcome copies (or inverts) the most
    #: recent outcome of the branch terminating the block at ``corr_src``.
    #: These model re-tests of the same condition along a path — visible in
    #: recent global history, so TAGE learns them and a bimodal counter
    #: only sees the marginal distribution.
    corr_src: int = 0
    corr_invert: bool = False

    @property
    def branch_pc(self) -> int:
        """Address of the terminating branch instruction."""
        return self.start + (self.n_instrs - 1) * INSTR_BYTES

    @property
    def fallthrough(self) -> int:
        """Address of the instruction after the terminating branch."""
        return self.start + self.n_instrs * INSTR_BYTES

    @property
    def size_bytes(self) -> int:
        return self.n_instrs * INSTR_BYTES

    @property
    def is_conditional(self) -> bool:
        return self.kind == BranchKind.COND

    @property
    def is_loop(self) -> bool:
        return self.kind == BranchKind.COND and self.loop_mean > 0


@dataclass(frozen=True)
class Function:
    """A contiguous run of basic blocks with a single entry."""

    func_id: int
    name: str
    entry: int
    layer: int
    block_starts: tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.block_starts)


@dataclass
class ControlFlowGraph:
    """The full static program: blocks, functions, and derived indexes."""

    blocks: dict[int, StaticBlock]
    functions: list[Function]
    entry: int
    name: str = "synthetic"
    #: Populated lazily: cache-block number -> blocks whose branch lies there.
    _branch_map: dict[int, list[StaticBlock]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._branch_map = {}
        for blk in self.blocks.values():
            self._branch_map.setdefault(block_of(blk.branch_pc), []).append(blk)
        for entries in self._branch_map.values():
            entries.sort(key=lambda b: b.branch_pc)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def code_bytes(self) -> int:
        """Total laid-out code footprint in bytes."""
        if not self.blocks:
            return 0
        last = max(self.blocks.values(), key=lambda b: b.start)
        first = min(b.start for b in self.blocks.values())
        return last.fallthrough - first

    @property
    def n_static_branches(self) -> int:
        """Every basic block ends in exactly one branch."""
        return len(self.blocks)

    def block_at(self, pc: int) -> StaticBlock:
        try:
            return self.blocks[pc]
        except KeyError:
            raise WorkloadError(f"no basic block starts at {pc:#x}") from None

    def branches_in_cache_block(self, cache_block: int) -> list[StaticBlock]:
        """Blocks whose terminating branch lies in ``cache_block``.

        This is what a hardware predecoder can extract from the raw bytes of
        one fetched cache block (branch opcodes encode kind and offset). The
        result is sorted by branch address.
        """
        return self._branch_map.get(cache_block, [])

    def function_of(self, func_id: int) -> Function:
        return self.functions[func_id]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`WorkloadError`.

        Invariants: positive block sizes; fall-throughs of conditional
        branches and calls land on block starts; direct targets land on
        block starts; calls target function entries; indirect branches
        carry a non-empty, positively-weighted target set that includes
        the primary target.
        """
        if self.entry not in self.blocks:
            raise WorkloadError(f"entry {self.entry:#x} is not a block start")
        starts = set(self.blocks)
        for blk in self.blocks.values():
            if blk.n_instrs < 1:
                raise WorkloadError(f"block {blk.start:#x} has no instructions")
            if blk.kind in (BranchKind.COND, BranchKind.CALL, BranchKind.IND_CALL):
                if blk.fallthrough not in starts:
                    raise WorkloadError(
                        f"block {blk.start:#x} ({blk.kind.name}) falls through to "
                        f"{blk.fallthrough:#x}, which is not a block start"
                    )
            if blk.kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
                if blk.target not in starts:
                    raise WorkloadError(
                        f"block {blk.start:#x} targets {blk.target:#x}, "
                        "which is not a block start"
                    )
            if blk.kind == BranchKind.CALL:
                if not any(f.entry == blk.target for f in self.functions):
                    raise WorkloadError(
                        f"call at {blk.branch_pc:#x} targets non-entry {blk.target:#x}"
                    )
            if blk.kind in (BranchKind.IND_CALL, BranchKind.IND_JUMP):
                if not blk.indirect_targets:
                    raise WorkloadError(
                        f"indirect branch at {blk.branch_pc:#x} has no target set"
                    )
                for tgt, weight in blk.indirect_targets:
                    if tgt not in starts:
                        raise WorkloadError(
                            f"indirect target {tgt:#x} is not a block start"
                        )
                    if weight <= 0:
                        raise WorkloadError(
                            f"indirect target {tgt:#x} has non-positive weight"
                        )
                if blk.target not in {t for t, _ in blk.indirect_targets}:
                    raise WorkloadError(
                        f"indirect branch at {blk.branch_pc:#x}: primary target "
                        "not in the target set"
                    )
            if blk.kind == BranchKind.COND and not blk.is_loop:
                if not (0.0 <= blk.bias <= 1.0):
                    raise WorkloadError(
                        f"conditional at {blk.branch_pc:#x} has bias {blk.bias}"
                    )
            if blk.corr_src:
                if blk.kind != BranchKind.COND or blk.is_loop:
                    raise WorkloadError(
                        f"correlation on non-conditional branch at {blk.branch_pc:#x}"
                    )
                src = self.blocks.get(blk.corr_src)
                if src is None or src.kind != BranchKind.COND:
                    raise WorkloadError(
                        f"correlated branch at {blk.branch_pc:#x} has a "
                        f"non-conditional source {blk.corr_src:#x}"
                    )
        for func in self.functions:
            for start in func.block_starts:
                if start not in starts:
                    raise WorkloadError(
                        f"function {func.name} lists missing block {start:#x}"
                    )
            if func.entry != func.block_starts[0]:
                raise WorkloadError(f"function {func.name} entry is not its first block")
