"""Synthetic server-program builder.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into a concrete
:class:`~repro.workloads.cfg.ControlFlowGraph`:

* a **driver** function that loops forever, dispatching transactions through
  an indirect call (the service-dispatch pattern of server stacks),
* **transaction handlers** (layer 1), one per transaction type, whose direct
  call chains descend through **service layers** down to **leaf helpers**,
* function bodies made of basic blocks with profile-controlled sizes,
  terminator mixes, short forward conditional targets (Figure 4), loop
  back-edges, intra-function jumps and indirect dispatch.

Everything is derived from ``profile.seed`` via a private PRNG, so a given
profile always builds the same program byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..config import INSTR_BYTES
from ..errors import WorkloadError
from .cfg import ControlFlowGraph, Function, StaticBlock
from .isa import BranchKind, block_of
from .profiles import WorkloadProfile

#: Functions are aligned like a typical linker would (4 instructions).
_FUNC_ALIGN = 16

#: Largest basic block the builder emits, in instructions.
_MAX_BB_INSTRS = 24


@dataclass
class _FunctionPlan:
    """Mutable scratch state for one function while the CFG is assembled."""

    func_id: int
    name: str
    layer: int
    bb_sizes: list[int]
    bb_kinds: list[BranchKind]
    callees: list[int] = field(default_factory=list)
    start: int = 0
    bb_starts: list[int] = field(default_factory=list)


def _zipf_weights(n: int, s: float = 0.8) -> list[float]:
    """Zipf-like popularity weights for ``n`` ranked items."""
    return [1.0 / (rank + 1) ** s for rank in range(n)]


def _draw_bb_size(rng: random.Random, avg: float) -> int:
    """Basic-block length in instructions: lognormal-ish, clamped.

    The lognormal is mean-corrected (mu = -sigma^2/2) so the draw's mean is
    ``avg``. A minimum of 2 instructions keeps every block at least one body
    instruction plus its terminating branch.
    """
    sigma = 0.55
    raw = rng.lognormvariate(-sigma * sigma / 2.0, sigma) * avg
    return max(2, min(_MAX_BB_INSTRS, round(raw)))


def _layer_budgets(profile: WorkloadProfile, total_instrs: int) -> list[int]:
    """Instruction budget per call-graph layer (index 0 = handlers).

    Handlers are ordinary-sized functions (one per transaction type); the
    bulk of the code lives in the service and leaf layers below them. This
    keeps a single transaction short enough that the driver dispatches many
    of them per trace — the recurrence temporal-stream prefetchers feed on.
    """
    n_layers = profile.layers
    handler_budget = profile.n_transaction_types * profile.avg_fn_instrs
    handler_budget = min(handler_budget, total_instrs // 4)
    rest = total_instrs - handler_budget
    n_lower = n_layers - 1
    if n_lower <= 0:
        return [total_instrs]
    weights = [1.3] * max(0, n_lower - 1) + [1.0]
    scale = rest / sum(weights)
    return [handler_budget] + [max(1, int(w * scale)) for w in weights]


def _plan_functions(profile: WorkloadProfile, rng: random.Random) -> list[_FunctionPlan]:
    """Decide the function inventory: count, size and layer of every function."""
    total_instrs = profile.code_kb * 1024 // INSTR_BYTES
    budgets = _layer_budgets(profile, total_instrs)
    plans: list[_FunctionPlan] = []
    for layer_idx, budget in enumerate(budgets):
        layer = layer_idx + 1
        if layer == 1:
            count = profile.n_transaction_types
        else:
            count = max(2, round(budget / profile.avg_fn_instrs))
        # Split the layer budget into per-function sizes with some spread.
        raw = [max(0.25, rng.lognormvariate(0.0, 0.5)) for _ in range(count)]
        norm = budget / sum(raw)
        for i, share in enumerate(raw):
            fn_instrs = max(3 * 2, int(share * norm))
            n_bbs = max(3, round(fn_instrs / profile.avg_bb_instrs))
            sizes = [_draw_bb_size(rng, profile.avg_bb_instrs) for _ in range(n_bbs)]
            plans.append(
                _FunctionPlan(
                    func_id=-1,  # assigned after the driver is prepended
                    name=f"L{layer}_fn{i}",
                    layer=layer,
                    bb_sizes=sizes,
                    bb_kinds=[],
                )
            )
    return plans


def _assign_callees(
    profile: WorkloadProfile, rng: random.Random, plans: list[_FunctionPlan]
) -> None:
    """Wire the layered call graph.

    Handlers (layer 1) draw mostly from a private slice of layer 2 — that is
    what makes each transaction type a distinct, repeatable instruction
    stream — with a minority share of globally popular helpers. Deeper
    layers draw Zipf-popular callees from the next layer down.
    """
    by_layer: dict[int, list[_FunctionPlan]] = {}
    for plan in plans:
        by_layer.setdefault(plan.layer, []).append(plan)
    n_layers = profile.layers

    for layer in range(1, n_layers):
        callers = by_layer.get(layer, [])
        pool = by_layer.get(layer + 1, [])
        if not pool:
            continue
        # A small "popular helper" subset is shared across callers (memcpy,
        # logging, locking); the rest of each caller's callees are spread
        # uniformly so the call graph fans out over the whole next layer.
        popular = pool[: max(2, len(pool) // 10)]
        if layer == 1:
            groups = _partition(pool, len(callers))
        for idx, caller in enumerate(callers):
            chosen: list[int] = []
            want = min(profile.call_fanout, len(pool))
            if layer == 1 and groups[idx]:
                private = groups[idx]
                take = min(len(private), max(1, int(round(want * 0.75))))
                chosen.extend(p.func_id for p in rng.sample(private, take))
            n_popular = max(1, want // 4)
            for pick in rng.sample(popular, min(n_popular, len(popular))):
                if pick.func_id not in chosen and len(chosen) < want:
                    chosen.append(pick.func_id)
            spread = [p for p in pool if p.func_id not in chosen]
            rng.shuffle(spread)
            for pick in spread:
                if len(chosen) >= want:
                    break
                chosen.append(pick.func_id)
            caller.callees = chosen


def _partition(items: list, n_groups: int) -> list[list]:
    """Split ``items`` into ``n_groups`` near-equal contiguous groups."""
    if n_groups <= 0:
        return []
    size = max(1, len(items) // n_groups)
    groups = [items[i * size : (i + 1) * size] for i in range(n_groups)]
    # Fold any remainder into the last group.
    tail = items[n_groups * size :]
    if tail and groups:
        groups[-1] = groups[-1] + tail
    return groups


def _assign_kinds(
    profile: WorkloadProfile, rng: random.Random, plan: _FunctionPlan
) -> None:
    """Choose a terminating-branch kind for every block of one function."""
    n_bbs = len(plan.bb_sizes)
    has_callees = bool(plan.callees)
    mix_kinds = [BranchKind.COND, BranchKind.CALL, BranchKind.JUMP]
    mix_weights = [profile.frac_cond, profile.frac_call, profile.frac_jump]
    if not has_callees:
        # Leaf functions cannot call; fold the call share into conditionals.
        mix_weights = [profile.frac_cond + profile.frac_call, 0.0, profile.frac_jump]

    kinds = [
        rng.choices(mix_kinds, weights=mix_weights, k=1)[0] for _ in range(n_bbs - 1)
    ]
    kinds.append(BranchKind.RET)

    if has_callees and BranchKind.CALL not in kinds[:-1] and n_bbs >= 2:
        kinds[rng.randrange(n_bbs - 1)] = BranchKind.CALL
    plan.bb_kinds = kinds


def _layout(
    plans: list[_FunctionPlan], rng: random.Random, base_addr: int
) -> None:
    """Place functions contiguously in a shuffled order; fix bb addresses.

    Shuffling decorrelates call-graph proximity from address proximity, so
    call/return targets land far from their call sites — the paper's "targets
    of unconditional branches tend to be far away" property.
    """
    order = list(plans)
    rng.shuffle(order)
    cursor = base_addr
    for plan in order:
        cursor = (cursor + _FUNC_ALIGN - 1) & ~(_FUNC_ALIGN - 1)
        plan.start = cursor
        plan.bb_starts = []
        for size in plan.bb_sizes:
            plan.bb_starts.append(cursor)
            cursor += size * INSTR_BYTES


def _pick_cond_target(
    profile: WorkloadProfile,
    rng: random.Random,
    plan: _FunctionPlan,
    index: int,
) -> int:
    """Forward conditional target: an if/else-style *join point*.

    The taken path skips a handful of basic blocks and rejoins the
    fall-through path, so both arms eventually cover the same code — the
    structure that gives real programs their short taken-branch distances
    (Figure 4) without starving path coverage. The skip count is derived
    from the profile's target-distance-in-cache-blocks distribution.
    """
    weights = profile.cond_dist_weights
    want_dist = rng.choices(range(len(weights)), weights=weights, k=1)[0]
    # Convert a distance in cache blocks into a number of skipped basic
    # blocks (16 instructions per block / mean block length).
    bbs_per_cache_block = 16.0 / profile.avg_bb_instrs
    skip = max(1, round(want_dist * bbs_per_cache_block + rng.random()))
    last = len(plan.bb_starts) - 1
    return plan.bb_starts[min(last, index + 1 + skip)]


def _draw_bias(profile: WorkloadProfile, rng: random.Random) -> float:
    weights = [w for w, _ in profile.bias_mixture]
    biases = [p for _, p in profile.bias_mixture]
    return rng.choices(biases, weights=weights, k=1)[0]


def _pick_correlation_source(
    plan: _FunctionPlan, index: int, cond_indexes: list[int]
) -> int | None:
    """A recent, non-loop conditional earlier in the function, if any.

    Correlated branches re-test a condition checked a few blocks earlier,
    so the source must sit close enough that its outcome is still in the
    predictor's recent global history when the dependent branch executes.
    """
    for j in reversed(cond_indexes):
        if index - j <= 12:
            return j
        break
    return None


def _indirect_target_set(
    rng: random.Random,
    candidates: list[int],
    max_fanout: int,
) -> tuple[tuple[int, float], ...]:
    """Weighted target set for an indirect branch; heaviest target first."""
    fanout = min(len(candidates), max(2, max_fanout))
    picks = rng.sample(candidates, fanout)
    weights = _zipf_weights(fanout, s=0.5)
    return tuple(zip(picks, weights))


def _resolve_function(
    profile: WorkloadProfile,
    rng: random.Random,
    plan: _FunctionPlan,
    entries: dict[int, int],
    blocks: dict[int, StaticBlock],
) -> None:
    """Create the StaticBlocks of one planned function."""
    last = len(plan.bb_starts) - 1
    loop_indexes: set[int] = set()
    cond_indexes: list[int] = []
    for i, (start, size, kind) in enumerate(
        zip(plan.bb_starts, plan.bb_sizes, plan.bb_kinds)
    ):
        bias = 0.5
        loop_mean = 0.0
        indirect: tuple[tuple[int, float], ...] = ()
        target = 0
        corr_src = 0
        corr_invert = False

        if kind == BranchKind.COND:
            is_loop = i >= 1 and rng.random() < profile.loop_frac
            if is_loop:
                back = rng.randint(1, min(3, i))
                # Loops only wrap call-free, loop-free bodies (string/buffer
                # style leaf loops). A call or another loop inside the body
                # would multiply whole subtrees by the trip count and let one
                # transaction swallow the trace.
                body_kinds = plan.bb_kinds[i - back : i]
                if any(k in (BranchKind.CALL, BranchKind.IND_CALL) for k in body_kinds):
                    is_loop = False
                elif any(j in loop_indexes for j in range(i - back, i)):
                    is_loop = False
            if is_loop:
                loop_indexes.add(i)
                target = plan.bb_starts[i - back]
                loop_mean = max(1.0, profile.loop_mean_trip * rng.uniform(0.5, 2.0))
            else:
                target = _pick_cond_target(profile, rng, plan, i)
                src_idx = _pick_correlation_source(plan, i, cond_indexes)
                if src_idx is not None and rng.random() < profile.corr_frac:
                    corr_src = plan.bb_starts[src_idx]
                    corr_invert = rng.random() < 0.5
                else:
                    bias = _draw_bias(profile, rng)
                cond_indexes.append(i)
        elif kind == BranchKind.JUMP:
            lo = min(i + 2, last)
            skip = min(last, lo + int(rng.expovariate(1 / 2.0)))
            target = plan.bb_starts[skip]
            if last > lo and rng.random() < profile.indirect_jump_frac:
                kind = BranchKind.IND_JUMP
                candidates = plan.bb_starts[lo : last + 1]
                indirect = _indirect_target_set(rng, candidates, 4)
                target = indirect[0][0]
        elif kind == BranchKind.CALL:
            callee_entries = [entries[fid] for fid in plan.callees]
            # Each call site gets its own rotation of the function's callee
            # pool, so distinct sites favour distinct callees (spreading
            # coverage over the pool) while any one site remains strongly
            # repeatable (what temporal-stream prefetchers exploit).
            rot = i % len(callee_entries)
            site_pool = callee_entries[rot:] + callee_entries[:rot]
            if len(site_pool) >= 2 and rng.random() < profile.indirect_call_frac:
                kind = BranchKind.IND_CALL
                indirect = _indirect_target_set(
                    rng, site_pool, profile.indirect_fanout
                )
                target = indirect[0][0]
            else:
                site_weights = _zipf_weights(len(site_pool), s=1.4)
                target = rng.choices(site_pool, weights=site_weights, k=1)[0]
        elif kind == BranchKind.RET:
            target = 0
        else:  # pragma: no cover - builder never plans other kinds
            raise WorkloadError(f"builder planned unexpected kind {kind}")

        blocks[start] = StaticBlock(
            start=start,
            n_instrs=size,
            kind=kind,
            target=target,
            func_id=plan.func_id,
            bias=bias,
            loop_mean=loop_mean,
            indirect_targets=indirect,
            corr_src=corr_src,
            corr_invert=corr_invert,
        )


def _build_driver(
    profile: WorkloadProfile,
    rng: random.Random,
    handler_entries: list[int],
    driver_plan: _FunctionPlan,
    blocks: dict[int, StaticBlock],
) -> None:
    """The dispatch loop: IND_CALL to a handler, then jump back."""
    dispatch_start, loop_tail_start = driver_plan.bb_starts
    weights = _zipf_weights(len(handler_entries), s=0.25)
    targets = tuple(zip(handler_entries, weights))
    blocks[dispatch_start] = StaticBlock(
        start=dispatch_start,
        n_instrs=driver_plan.bb_sizes[0],
        kind=BranchKind.IND_CALL,
        target=targets[0][0],
        func_id=driver_plan.func_id,
        indirect_targets=targets,
    )
    blocks[loop_tail_start] = StaticBlock(
        start=loop_tail_start,
        n_instrs=driver_plan.bb_sizes[1],
        kind=BranchKind.JUMP,
        target=dispatch_start,
        func_id=driver_plan.func_id,
    )


def build_cfg(profile: WorkloadProfile, base_addr: int = 0x40_0000) -> ControlFlowGraph:
    """Build the deterministic synthetic program for ``profile``.

    The returned CFG is validated; a :class:`~repro.errors.WorkloadError`
    here indicates a builder bug, not bad user input.
    """
    rng = random.Random(profile.seed)

    plans = _plan_functions(profile, rng)
    driver_plan = _FunctionPlan(
        func_id=0,
        name="driver",
        layer=0,
        bb_sizes=[4, 3],
        bb_kinds=[BranchKind.IND_CALL, BranchKind.JUMP],
    )
    plans.insert(0, driver_plan)
    for func_id, plan in enumerate(plans):
        plan.func_id = func_id

    _assign_callees(profile, rng, plans[1:])
    for plan in plans[1:]:
        _assign_kinds(profile, rng, plan)

    _layout(plans, rng, base_addr)

    entries = {plan.func_id: plan.bb_starts[0] for plan in plans}
    blocks: dict[int, StaticBlock] = {}
    handler_entries = [entries[p.func_id] for p in plans if p.layer == 1]
    _build_driver(profile, rng, handler_entries, driver_plan, blocks)
    for plan in plans[1:]:
        _resolve_function(profile, rng, plan, entries, blocks)

    functions = [
        Function(
            func_id=plan.func_id,
            name=plan.name,
            entry=plan.bb_starts[0],
            layer=plan.layer,
            block_starts=tuple(plan.bb_starts),
        )
        for plan in plans
    ]
    cfg = ControlFlowGraph(
        blocks=blocks,
        functions=functions,
        entry=driver_plan.bb_starts[0],
        name=profile.name,
    )
    cfg.validate()
    return cfg


def reachable_blocks(cfg: ControlFlowGraph) -> set[int]:
    """Block starts reachable from the CFG entry.

    Uses the standard "every call returns" approximation: a call block's
    successors are its callee entries *and* its fall-through. In the builder's
    output every function terminates, so this is exact.
    """
    seen: set[int] = set()
    work = [cfg.entry]
    while work:
        pc = work.pop()
        if pc in seen:
            continue
        seen.add(pc)
        blk = cfg.blocks.get(pc)
        if blk is None:
            continue
        if blk.kind == BranchKind.COND:
            succs = [blk.target, blk.fallthrough]
        elif blk.kind == BranchKind.JUMP:
            succs = [blk.target]
        elif blk.kind == BranchKind.IND_JUMP:
            succs = [t for t, _ in blk.indirect_targets]
        elif blk.kind == BranchKind.CALL:
            succs = [blk.target, blk.fallthrough]
        elif blk.kind == BranchKind.IND_CALL:
            succs = [t for t, _ in blk.indirect_targets] + [blk.fallthrough]
        else:  # RET: successor comes from the dynamic call stack
            succs = []
        for succ in succs:
            if succ not in seen:
                work.append(succ)
    return seen
