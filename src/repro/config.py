"""Configuration dataclasses for the simulated microarchitecture.

The default values reproduce Table I of the paper:

=====================  =====================================================
Processor              16-core, 2 GHz, 3-way OoO, 128 ROB
Branch predictor       TAGE (8 KB storage budget)
BTB                    2K-entry (basic-block oriented)
L1-I                   32 KB / 2-way, 2-cycle, 64-entry prefetch buffer
LLC                    shared NUCA, 512 KB/core, 16-way, 5-cycle bank access
Interconnect           4x4 2D mesh, 3 cycles/hop (avg. round trip ~30 cyc)
Memory latency         45 ns (90 cycles at 2 GHz)
=====================  =====================================================

Only one core is simulated in detail; the other 15 cores exist through the
NoC/LLC latency model (see DESIGN.md section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Cache block (line) size in bytes, fixed across the hierarchy.
BLOCK_BYTES = 64

#: Fixed instruction size in bytes (SPARC-like RISC encoding).
INSTR_BYTES = 4

#: Instructions per cache block.
INSTRS_PER_BLOCK = BLOCK_BYTES // INSTR_BYTES


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one set-associative cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int = BLOCK_BYTES
    hit_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.assoc > 0, "associativity must be positive")
        _require(self.block_bytes > 0, "block size must be positive")
        _require(
            self.size_bytes % (self.assoc * self.block_bytes) == 0,
            "cache size must be a multiple of assoc * block size",
        )
        _require(_is_pow2(self.n_sets), "number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_bytes


@dataclass(frozen=True)
class NoCParams:
    """On-chip interconnect latency model.

    ``mesh`` models the paper's 4x4 2D mesh at 3 cycles/hop; ``crossbar``
    models the wide crossbar of Section VI-E2 with a fixed low round trip.
    """

    kind: str = "mesh"
    mesh_dim: int = 4
    cycles_per_hop: int = 3
    router_latency: int = 1
    #: Per-direction serialization/queueing overhead (packetization, bank
    #: conflicts); tuned so the 4x4 mesh averages the paper's ~30-cycle
    #: LLC round trip.
    serialization: int = 4
    crossbar_round_trip: int = 18

    def __post_init__(self) -> None:
        _require(self.kind in ("mesh", "crossbar"), f"unknown NoC kind {self.kind!r}")
        _require(self.mesh_dim >= 1, "mesh dimension must be >= 1")
        _require(self.cycles_per_hop >= 0, "cycles per hop must be >= 0")


@dataclass(frozen=True)
class BTBParams:
    """Basic-block-oriented branch target buffer geometry."""

    entries: int = 2048
    assoc: int = 4

    def __post_init__(self) -> None:
        _require(self.entries > 0, "BTB entries must be positive")
        _require(self.assoc > 0, "BTB associativity must be positive")
        _require(self.entries % self.assoc == 0, "BTB entries must divide by assoc")
        _require(_is_pow2(self.entries // self.assoc), "BTB sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class CoreParams:
    """Pipeline widths and latencies of the simulated core (3-way OoO)."""

    fetch_width: int = 3
    commit_width: int = 3
    rob_size: int = 128
    #: Cycles from fetch delivery to back-end entry (decode/rename depth).
    decode_latency: int = 4
    #: Cycles from back-end entry to branch resolution.
    resolve_latency: int = 14
    #: Bubble cycles on a front-end redirect (squash).
    redirect_bubble: int = 2
    ftq_depth: int = 32
    ras_entries: int = 32
    #: Data-side back-end model: this fraction of basic blocks stalls retire
    #: for ``data_stall_cycles`` when it reaches the ROB head (L1-D misses,
    #: dependence chains). Dilutes front-end time to the paper's regime —
    #: server cores spend most cycles on the data side.
    data_stall_bb_frac: float = 0.32
    data_stall_cycles: int = 20
    #: Cycles to read + predecode a resident block during Boomerang's BTB
    #: miss resolution (L1-I access + predecode + BTB insert).
    predecode_latency: int = 3

    def __post_init__(self) -> None:
        _require(self.fetch_width > 0, "fetch width must be positive")
        _require(self.commit_width > 0, "commit width must be positive")
        _require(self.rob_size >= self.commit_width, "ROB must hold a commit group")
        _require(self.ftq_depth >= 1, "FTQ depth must be >= 1")


@dataclass(frozen=True)
class MemoryParams:
    """L1-I, LLC and DRAM timing/geometry."""

    l1i: CacheParams = field(default_factory=lambda: CacheParams(32 * 1024, 2, hit_latency=2))
    #: Modelled shared-LLC slice capacity visible to the simulated core.
    llc: CacheParams = field(default_factory=lambda: CacheParams(4 * 1024 * 1024, 16, hit_latency=5))
    noc: NoCParams = field(default_factory=NoCParams)
    #: DRAM access latency in cycles (45 ns at 2 GHz).
    memory_latency: int = 90
    prefetch_buffer_entries: int = 64
    #: Override the computed LLC round-trip latency (used by latency sweeps).
    llc_round_trip_override: int | None = None
    #: LLC/NoC contention: fills beyond this many outstanding each add
    #: ``llc_contention_penalty`` cycles. This is what makes over-aggressive
    #: prefetching (Figure 10's 4/8-block policies) delay useful blocks.
    llc_contention_free: int = 8
    llc_contention_penalty: int = 3

    def __post_init__(self) -> None:
        _require(self.memory_latency >= 0, "memory latency must be >= 0")
        _require(self.prefetch_buffer_entries >= 1, "prefetch buffer needs >= 1 entry")
        if self.llc_round_trip_override is not None:
            _require(self.llc_round_trip_override >= 1, "LLC latency override must be >= 1")

    @property
    def llc_round_trip(self) -> int:
        """Average L1-I-miss-to-fill latency for an LLC hit, in cycles."""
        if self.llc_round_trip_override is not None:
            return self.llc_round_trip_override
        noc = self.noc
        if noc.kind == "crossbar":
            return noc.crossbar_round_trip + self.llc.hit_latency
        # Average Manhattan distance between two uniform-random tiles of an
        # n x n mesh is 2*(n^2-1)/(3n) hops each way.
        n = noc.mesh_dim
        avg_hops = 2.0 * (n * n - 1) / (3.0 * n)
        one_way = avg_hops * noc.cycles_per_hop + noc.router_latency + noc.serialization
        return int(round(2 * one_way + self.llc.hit_latency))


@dataclass(frozen=True)
class PredictorParams:
    """Branch direction predictor selection and sizing."""

    kind: str = "tage"
    #: Bimodal table entries (used by ``bimodal`` and as the TAGE base table).
    bimodal_entries: int = 4096
    #: TAGE tagged-table geometry (entries per table, tag bits, history lengths).
    tage_table_entries: int = 1024
    tage_tag_bits: int = 8
    tage_history_lengths: tuple[int, ...] = (5, 15, 44, 130)
    #: gshare geometry (an extra baseline beyond the paper's set).
    gshare_entries: int = 4096
    gshare_history: int = 12

    KNOWN_KINDS = ("never_taken", "always_taken", "bimodal", "gshare", "tage", "oracle")

    def __post_init__(self) -> None:
        _require(self.kind in self.KNOWN_KINDS, f"unknown predictor kind {self.kind!r}")
        _require(_is_pow2(self.bimodal_entries), "bimodal entries must be a power of two")
        _require(_is_pow2(self.tage_table_entries), "TAGE table entries must be a power of two")
        _require(len(self.tage_history_lengths) >= 1, "TAGE needs >= 1 tagged table")
        _require(
            all(a < b for a, b in zip(self.tage_history_lengths, self.tage_history_lengths[1:])),
            "TAGE history lengths must be strictly increasing",
        )


@dataclass(frozen=True)
class PrefetchParams:
    """Per-mechanism tunables for the control-flow delivery schemes."""

    #: Next-line prefetch degree (blocks) for ``next_line`` and DIP's helper.
    next_line_degree: int = 2
    #: DIP discontinuity table entries.
    dip_table_entries: int = 8192
    #: PIF/SHIFT temporal history length (block records) and index entries.
    stream_history_entries: int = 32768
    stream_index_entries: int = 8192
    #: Blocks prefetched ahead of the stream replay pointer.
    stream_lookahead: int = 16
    #: History records fetched per LLC access when metadata lives in the LLC
    #: (SHIFT/Confluence); each chunk fetch pays the LLC round trip.
    shift_chunk_records: int = 8
    #: Boomerang: sequential blocks prefetched under an unresolved BTB miss.
    throttle_blocks: int = 2
    #: Boomerang: BTB prefetch buffer capacity (entries).
    btb_prefetch_buffer_entries: int = 32
    #: Confluence models a generous 16K-entry BTB (paper Section V-A).
    confluence_btb_entries: int = 16384

    def __post_init__(self) -> None:
        _require(self.next_line_degree >= 1, "next-line degree must be >= 1")
        _require(self.throttle_blocks >= 0, "throttle blocks must be >= 0")
        _require(self.stream_lookahead >= 1, "stream lookahead must be >= 1")
        _require(self.shift_chunk_records >= 1, "SHIFT chunk must hold >= 1 record")


@dataclass(frozen=True)
class SimConfig:
    """Complete configuration of one simulation run."""

    mechanism: str = "none"
    core: CoreParams = field(default_factory=CoreParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    btb: BTBParams = field(default_factory=BTBParams)
    predictor: PredictorParams = field(default_factory=PredictorParams)
    prefetch: PrefetchParams = field(default_factory=PrefetchParams)
    #: Idealizations used by the Figure 1 opportunity study.
    perfect_l1i: bool = False
    perfect_btb: bool = False

    def with_llc_latency(self, round_trip: int) -> "SimConfig":
        """Return a copy whose LLC round trip is pinned to ``round_trip``."""
        return replace(self, memory=replace(self.memory, llc_round_trip_override=round_trip))

    def with_btb_entries(self, entries: int) -> "SimConfig":
        """Return a copy with a resized (same-associativity) BTB."""
        assoc = self.btb.assoc
        if entries % assoc != 0 or not _is_pow2(entries // assoc):
            assoc = 4 if entries % 4 == 0 and _is_pow2(entries // 4) else 1
        return replace(self, btb=BTBParams(entries=entries, assoc=assoc))

    def with_predictor(self, kind: str) -> "SimConfig":
        """Return a copy using direction predictor ``kind``."""
        return replace(self, predictor=replace(self.predictor, kind=kind))
