"""repro.warehouse — the queryable SQLite snapshot of every result store.

See :mod:`repro.warehouse.core` for the consolidation model and
:mod:`repro.warehouse.queries` for the canned queries. Entry point::

    python -m repro.warehouse refresh --cache-dir ~/.repro-cache
    python -m repro.warehouse contour dense-latency-btb --cache-dir ...
    python -m repro.warehouse gate --baseline benchmarks/results/warehouse_baseline.json
"""

from __future__ import annotations

from .core import (
    DB_NAME,
    WAREHOUSE_SCHEMA,
    RefreshStats,
    WarehouseStatus,
    connect,
    db_path,
    read_status,
    refresh_warehouse,
)
from .gate import TRACKED_KEYS, collect_metrics, run_gate
from .queries import QUERIES, lookup_cell

#: The canned query names the CLI exposes. RPL006 pins this literal
#: against the ``QUERIES`` registry keys in :mod:`repro.warehouse.queries`.
QUERY_NAMES = ("contour", "sensitivity", "trajectory")

__all__ = [
    "DB_NAME",
    "QUERIES",
    "QUERY_NAMES",
    "TRACKED_KEYS",
    "WAREHOUSE_SCHEMA",
    "RefreshStats",
    "WarehouseStatus",
    "collect_metrics",
    "connect",
    "db_path",
    "lookup_cell",
    "read_status",
    "refresh_warehouse",
    "run_gate",
]
