"""The warehouse regression gate: tracked metrics vs a committed baseline.

``python -m repro.warehouse gate --baseline benchmarks/results/
warehouse_baseline.json`` reads the *deterministic* metrics out of the
consolidated benchmark payloads and fails (exit 1) when any tracked
metric drifts past the tolerance — CI's tripwire against silent
regressions in the quantities the benchmarks pin.

Only keys in :data:`TRACKED_KEYS` participate. Wall-clock speedups are
deliberately **not** tracked here: they vary with the runner and are
already guarded by each benchmark's own asserted floor (which *is*
tracked, as ``speedup_floor``/``reduction_floor``). Booleans must match
exactly; numbers must stay within a relative tolerance. A tracked metric
present in the baseline but missing from the warehouse is a failure too
(a benchmark silently dropped is drift, not progress). ``--update``
rewrites the baseline atomically from the current snapshot instead of
comparing.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from ..errors import ConfigError
from ..runtime.atomicio import atomic_write_json

#: Baseline file format version.
GATE_SCHEMA = "warehouse-gate-v1"

#: Payload keys tracked per benchmark, as ``<bench>.<key>`` metrics.
#: Deterministic quantities only — never raw wall-clock numbers.
TRACKED_KEYS: tuple[str, ...] = (
    "cells",
    "exact_cells",
    "analytic_cells",
    "reduction",
    "batch_width",
    "batch_units",
    "max_rel_err",
    "bit_identical",
    "bounds_ok",
    "speedup_floor",
    "reduction_floor",
)


def collect_metrics(conn: sqlite3.Connection) -> dict[str, float | bool]:
    """``<bench>.<key>`` for every tracked key of every active payload."""
    metrics: dict[str, float | bool] = {}
    for row in conn.execute(
        "SELECT bench, payload FROM benches WHERE active = 1 ORDER BY bench"
    ):
        bench = str(row[0])
        try:
            payload = json.loads(str(row[1]))
        except ValueError:
            continue
        if not isinstance(payload, dict):
            continue
        for key in TRACKED_KEYS:
            value = payload.get(key)
            if isinstance(value, bool):
                metrics[f"{bench}.{key}"] = value
            elif isinstance(value, (int, float)):
                metrics[f"{bench}.{key}"] = float(value)
    return metrics


def load_baseline(path: str | Path) -> dict[str, float | bool]:
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read gate baseline {path}: {exc}") from None
    if not isinstance(record, dict) or record.get("schema") != GATE_SCHEMA:
        raise ConfigError(
            f"{path} is not a warehouse gate baseline (expected schema "
            f"{GATE_SCHEMA!r}); regenerate with `warehouse gate --update`"
        )
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        raise ConfigError(f"malformed gate baseline {path}: no metrics object")
    out: dict[str, float | bool] = {}
    for name, value in metrics.items():
        if isinstance(value, bool):
            out[str(name)] = value
        elif isinstance(value, (int, float)):
            out[str(name)] = float(value)
    return out


def write_baseline(path: str | Path, metrics: dict[str, float | bool]) -> None:
    atomic_write_json(
        Path(path),
        {"schema": GATE_SCHEMA, "metrics": {k: metrics[k] for k in sorted(metrics)}},
    )


def run_gate(
    conn: sqlite3.Connection,
    baseline_path: str | Path,
    tolerance: float = 0.05,
    update: bool = False,
) -> tuple[int, list[str]]:
    """Compare (or, with ``update``, rewrite) the baseline.

    Returns ``(exit_code, report_lines)``; nonzero means a tracked metric
    drifted past the tolerance or vanished from the warehouse. Metrics in
    the warehouse but not in the baseline are reported as notes, never
    failures — new benchmarks land first, get baselined second.
    """
    current = collect_metrics(conn)
    if update:
        write_baseline(baseline_path, current)
        return 0, [
            f"gate: wrote {len(current)} tracked metric(s) to {baseline_path}"
        ]
    baseline = load_baseline(baseline_path)
    lines: list[str] = []
    failures = 0
    for name in sorted(baseline):
        expected = baseline[name]
        actual = current.get(name)
        if actual is None:
            failures += 1
            lines.append(f"FAIL {name}: tracked metric missing from warehouse")
        elif isinstance(expected, bool) or isinstance(actual, bool):
            if actual is expected:
                lines.append(f"ok   {name}: {actual}")
            else:
                failures += 1
                lines.append(f"FAIL {name}: {actual} (baseline {expected})")
        else:
            rel = abs(actual - expected) / max(abs(expected), 1e-12)
            if rel <= tolerance:
                lines.append(f"ok   {name}: {actual:g} (baseline {expected:g})")
            else:
                failures += 1
                lines.append(
                    f"FAIL {name}: {actual:g} drifted {rel:.1%} from "
                    f"baseline {expected:g} (tolerance {tolerance:.1%})"
                )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"note {name}: untracked (re-baseline with --update)")
    verdict = "FAILED" if failures else "passed"
    lines.append(
        f"gate {verdict}: {len(baseline) - failures}/{len(baseline)} "
        f"tracked metric(s) within tolerance {tolerance:.1%}"
    )
    return (1 if failures else 0), lines
