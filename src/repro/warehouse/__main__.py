"""Warehouse CLI: refresh, inspect, query, and gate the result warehouse.

Usage::

    python -m repro.warehouse refresh [--cache-dir DIR] [--results-dir DIR]
    python -m repro.warehouse status  [--cache-dir DIR]
    python -m repro.warehouse contour SWEEP [--scale NAME] [--workload-set NAME]
    python -m repro.warehouse sensitivity [SWEEP] [--scale NAME] [...]
    python -m repro.warehouse trajectory
    python -m repro.warehouse gate --baseline FILE [--tolerance T] [--update]

``refresh`` consolidates every readable result record (loose, sharded,
analytic) plus the ``BENCH_*.json`` payloads into ``warehouse.sqlite``
beside the schema-tag directories — idempotent, crash-safe, with a full
per-refresh revision history (see ``repro.warehouse.core``). The query
subcommands print Markdown tables straight from that snapshot; ``gate``
compares the tracked benchmark metrics against a committed baseline and
exits nonzero on drift.

The cache directory comes from ``--cache-dir`` or ``REPRO_CACHE_DIR`` —
the same resolution every other CLI in this repo uses.
"""

from __future__ import annotations

import argparse
import sys

from ..envopts import env_str
from ..errors import ConfigError
from .core import (
    DEFAULT_RESULTS_DIR,
    connect,
    db_path,
    read_status,
    refresh_warehouse,
)
from .gate import run_gate
from .queries import QUERIES


def _resolve_cache_dir(arg: str | None) -> str:
    cache_dir = arg or env_str("REPRO_CACHE_DIR", "")
    if not cache_dir:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    return cache_dir


def _cmd_refresh(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    results_dir = None if args.no_bench else (args.results_dir or DEFAULT_RESULTS_DIR)
    stats = refresh_warehouse(cache_dir, results_dir=results_dir)
    print(f"[warehouse: {stats.summary()}]")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    path = db_path(cache_dir)
    if not path.is_file():
        print(f"no warehouse at {path} (run `python -m repro.warehouse refresh`)")
        return 1
    conn = connect(cache_dir)
    try:
        status = read_status(conn)
    finally:
        conn.close()
    print(f"warehouse at {path} (schema {status.schema})")
    for tag, fidelity, count in status.by_tag:
        print(f"  {tag:<48s} {fidelity:<9s} {count:6d} active cell(s)")
    print(
        f"  {status.active_cells} active / {status.inactive_cells} inactive "
        f"cell(s), {status.benches} bench payload(s), "
        f"{status.refreshes} refresh(es), {status.revisions} revision(s)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    if not db_path(cache_dir).is_file():
        print(
            f"no warehouse under {cache_dir} "
            f"(run `python -m repro.warehouse refresh`)",
            file=sys.stderr,
        )
        return 1
    conn = connect(cache_dir)
    try:
        render = QUERIES[args.query]
        print(
            render(conn, args.sweep, args.scale, args.workload_set),
            end="",
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    if not db_path(cache_dir).is_file():
        print(
            f"no warehouse under {cache_dir} "
            f"(run `python -m repro.warehouse refresh`)",
            file=sys.stderr,
        )
        return 1
    conn = connect(cache_dir)
    try:
        code, lines = run_gate(
            conn, args.baseline, tolerance=args.tolerance, update=args.update
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()
    for line in lines:
        print(line)
    return code


def _add_query_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
    name: str,
    help_text: str,
    sweep_default: str | None,
    sweep_required: bool,
) -> None:
    p = sub.add_parser(name, help=help_text)
    p.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    if sweep_required:
        p.add_argument("sweep", help="sweep name (see `sweeps list`)")
    else:
        p.add_argument("sweep", nargs="?", default=sweep_default)
    p.add_argument("--scale", help="experiment scale (or REPRO_SCALE)")
    p.add_argument("--workload-set", help="profile set (default: the sweep's)")
    p.set_defaults(func=_cmd_query, query=name)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.warehouse",
        description=(
            "consolidate simulation results into a queryable SQLite "
            "warehouse; run canned queries and the CI regression gate"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_refresh = sub.add_parser(
        "refresh", help="scan the stores and consolidate the warehouse"
    )
    p_refresh.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_refresh.add_argument(
        "--results-dir",
        help=f"BENCH_*.json payload directory (default: {DEFAULT_RESULTS_DIR})",
    )
    p_refresh.add_argument(
        "--no-bench",
        action="store_true",
        help="skip benchmark payload ingestion",
    )
    p_refresh.set_defaults(func=_cmd_refresh)

    p_status = sub.add_parser("status", help="show warehouse snapshot counts")
    p_status.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_status.set_defaults(func=_cmd_status)

    _add_query_parser(
        sub,
        "contour",
        "per-mechanism speedup table over a sweep's knob grid",
        sweep_default=None,
        sweep_required=True,
    )
    _add_query_parser(
        sub,
        "sensitivity",
        "per-workload × per-mechanism matrix for an axis-free sweep",
        sweep_default="ablation-matrix",
        sweep_required=False,
    )
    _add_query_parser(
        sub,
        "trajectory",
        "benchmark payload history across refreshes",
        sweep_default=None,
        sweep_required=False,
    )

    p_gate = sub.add_parser(
        "gate", help="compare tracked benchmark metrics against a baseline"
    )
    p_gate.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_gate.add_argument(
        "--baseline", required=True, help="baseline JSON file (committed in the repo)"
    )
    p_gate.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative drift tolerance for numeric metrics (default 0.05)",
    )
    p_gate.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current snapshot instead of comparing",
    )
    p_gate.set_defaults(func=_cmd_gate)

    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
