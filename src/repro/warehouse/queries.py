"""Canned warehouse queries: contour, sensitivity, trajectory.

Each query renders a Markdown table (pipe syntax — pasted verbatim into
CI step summaries) straight from the consolidated SQLite snapshot. No
simulation runs here: the grid geometry comes from the sweep registry
(:mod:`repro.experiments.sweeps`), which yields the same content-addressed
``(workload, scale token, config digest)`` keys the runtime caches under,
and every key is answered by a warehouse lookup.

Tier isolation is enforced in the lookup SQL: among the active rows for a
key, ``exact`` cells always outrank ``analytic`` ones (an estimate can
never shadow a measured result), current-schema rows outrank stale ones,
and ties break deterministically. Cells that used any analytic estimate
are marked with ``~`` and the table footer reports the worst combined
relative-error bound (:func:`repro.analytic.model.combined_speedup_bound`),
so an estimated number is never presented as a measured one.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analytic.model import combined_speedup_bound
from ..runtime import SimJob
from ..stats import geometric_mean
from .core import ANALYTIC_SCHEMA_TAG, ENGINE_SCHEMA_TAG

if TYPE_CHECKING:  # pragma: no cover - cycle guard (sweeps import runtime)
    from ..experiments.sweeps import SweepPoint

#: Rendered for a grid cell with no (complete) warehouse answer.
MISSING = "—"

#: Appended to a cell value that involved at least one analytic estimate.
ANALYTIC_MARK = "~"


# ---------------------------------------------------------------------------
# Cell lookup (the tier-isolation boundary)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellView:
    """The row a key resolves to, after tier/schema preference."""

    mechanism: str
    ipc: float | None
    fidelity: str
    rel_err_bound: float


def lookup_cell(
    conn: sqlite3.Connection, workload: str, scale: str, digest: str
) -> CellView | None:
    """The best active row for one content-addressed key.

    Preference order: exact over analytic (the PR 8 isolation invariant,
    now at the SQL layer), current schema tags over stale ones, then most
    recently seen, then lexically-latest tag — every clause deterministic,
    so repeated queries over the same snapshot are bit-identical.
    """
    row = conn.execute(
        "SELECT mechanism, ipc, fidelity, analytic_rel_err_bound FROM cells"
        " WHERE workload = ? AND scale = ? AND config_digest = ? AND active = 1"
        " ORDER BY (fidelity = 'exact') DESC, (schema_tag IN (?, ?)) DESC,"
        " last_seen DESC, schema_tag DESC LIMIT 1",
        (workload, scale, digest, ENGINE_SCHEMA_TAG, ANALYTIC_SCHEMA_TAG),
    ).fetchone()
    if row is None:
        return None
    ipc = float(row[1]) if row[1] is not None else None
    return CellView(
        mechanism=str(row[0]),
        ipc=ipc,
        fidelity=str(row[2]),
        rel_err_bound=float(row[3]),
    )


@dataclass(frozen=True)
class GridValue:
    """One aggregated grid cell: a gmean speedup plus its provenance."""

    value: float
    analytic: bool
    #: Worst combined rel-err bound across the workloads (0.0 if exact).
    bound: float

    def render(self) -> str:
        mark = ANALYTIC_MARK if self.analytic else ""
        return f"{self.value:.4f}{mark}"


def _point_value(
    conn: sqlite3.Connection,
    point: SweepPoint,
    workloads: tuple[str, ...],
    workload_scale: float,
    include_baseline: bool,
) -> GridValue | None:
    """Gmean metric of one grid point across its workloads, or None.

    With baselines: per-workload speedup (mechanism IPC over the matched
    no-prefetch baseline IPC); without: plain IPC. A point is complete
    only if *every* workload answers — a partial gmean would not be
    comparable across the grid.
    """
    values: list[float] = []
    analytic = False
    bound = 0.0
    for name in workloads:
        mech_key = SimJob(name, point.config(), workload_scale).key
        mech = lookup_cell(conn, *mech_key)
        if mech is None or mech.ipc is None or mech.ipc <= 0:
            return None
        if include_baseline:
            base_key = SimJob(name, point.baseline(), workload_scale).key
            base = lookup_cell(conn, *base_key)
            if base is None or base.ipc is None or base.ipc <= 0:
                return None
            values.append(mech.ipc / base.ipc)
            if mech.fidelity == "analytic" or base.fidelity == "analytic":
                analytic = True
                bound = max(
                    bound,
                    combined_speedup_bound(mech.rel_err_bound, base.rel_err_bound),
                )
        else:
            values.append(mech.ipc)
            if mech.fidelity == "analytic":
                analytic = True
                bound = max(bound, mech.rel_err_bound)
    return GridValue(value=geometric_mean(values), analytic=analytic, bound=bound)


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------


def _markdown_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _footer(values: list[GridValue | None]) -> list[str]:
    present = [v for v in values if v is not None]
    notes: list[str] = []
    bounds = [v.bound for v in present if v.analytic]
    if bounds:
        notes.append(
            f"`{ANALYTIC_MARK}` cell uses analytic estimates "
            f"(worst combined rel. err bound {max(bounds):.4f})"
        )
    if len(present) < len(values):
        notes.append(f"`{MISSING}` cell has no consolidated result yet")
    return [""] + [f"> {n}" for n in notes] if notes else []


# ---------------------------------------------------------------------------
# The canned queries
# ---------------------------------------------------------------------------


def render_contour(
    conn: sqlite3.Connection,
    sweep: str,
    scale: str | None = None,
    workload_set: str | None = None,
) -> str:
    """The per-mechanism speedup table over a sweep's knob grid.

    For a two-axis sweep (the dense latency × BTB grid) each mechanism
    gets a matrix — first axis down, second axis across. One axis renders
    as axis-points × mechanisms; no axes as one row per mechanism.
    """
    from ..experiments.common import get_scale
    from ..experiments.sweeps import get_sweep

    spec = get_sweep(sweep)
    exp_scale = get_scale(scale)
    workloads = spec.workloads(workload_set)
    points = spec.points(exp_scale)
    metric = "gmean speedup" if spec.include_baseline else "gmean ipc"
    lines = [
        f"### contour `{spec.name}` — {metric} over "
        f"{len(workloads)} workload(s), scale `{exp_scale.name}`",
        "",
    ]
    values: dict[tuple[str, tuple[object, ...]], GridValue | None] = {}
    for point in points:
        values[(point.mechanism, tuple(v for _, v in point.settings))] = _point_value(
            conn, point, workloads, exp_scale.workload_scale, spec.include_baseline
        )

    def cell(mechanism: str, settings: tuple[object, ...]) -> str:
        value = values[(mechanism, settings)]
        return value.render() if value is not None else MISSING

    axes = spec.axes
    if len(axes) == 2:
        from ..experiments.sweeps import _axis_points

        rows_axis, cols_axis = axes
        row_points = _axis_points(rows_axis, exp_scale)
        col_points = _axis_points(cols_axis, exp_scale)
        for mechanism in spec.mechanisms:
            lines.append(f"#### {mechanism}")
            headers = [f"{rows_axis[0]} \\ {cols_axis[0]}"] + [
                str(c) for c in col_points
            ]
            table = [
                [str(r)] + [cell(mechanism, (r, c)) for c in col_points]
                for r in row_points
            ]
            lines.extend(_markdown_table(headers, table))
            lines.append("")
    elif len(axes) == 1:
        from ..experiments.sweeps import _axis_points

        axis_points = _axis_points(axes[0], exp_scale)
        headers = [axes[0][0]] + list(spec.mechanisms)
        table = [
            [str(p)] + [cell(m, (p,)) for m in spec.mechanisms] for p in axis_points
        ]
        lines.extend(_markdown_table(headers, table))
        lines.append("")
    else:
        headers = ["mechanism", metric]
        table = [[m, cell(m, ())] for m in spec.mechanisms]
        lines.extend(_markdown_table(headers, table))
        lines.append("")
    lines.extend(_footer(list(values.values())))
    return "\n".join(lines).rstrip() + "\n"


def render_sensitivity(
    conn: sqlite3.Connection,
    sweep: str = "ablation-matrix",
    scale: str | None = None,
    workload_set: str | None = None,
) -> str:
    """Per-workload × per-mechanism speedup matrix for an axis-free sweep.

    The cross-profile view of the ablation matrix: how sensitive each
    workload profile is to each mechanism, with a gmean summary row.
    Sweeps with knob axes have a geometry this table cannot express —
    use ``contour`` for those.
    """
    from ..errors import ConfigError
    from ..experiments.common import get_scale
    from ..experiments.sweeps import get_sweep

    spec = get_sweep(sweep)
    if spec.axes:
        raise ConfigError(
            f"sweep {spec.name!r} has knob axes; `sensitivity` renders "
            f"axis-free sweeps — use `contour {spec.name}` instead"
        )
    exp_scale = get_scale(scale)
    workloads = spec.workloads(workload_set)
    metric = "speedup" if spec.include_baseline else "ipc"
    lines = [
        f"### sensitivity `{spec.name}` — per-workload {metric}, "
        f"scale `{exp_scale.name}`",
        "",
    ]
    headers = ["workload"] + list(spec.mechanisms)
    points = {p.mechanism: p for p in spec.points(exp_scale)}
    table: list[list[str]] = []
    rendered: list[GridValue | None] = []
    per_mech: dict[str, list[float]] = {m: [] for m in spec.mechanisms}
    complete: dict[str, bool] = {m: True for m in spec.mechanisms}
    for name in workloads:
        row = [name]
        for mechanism in spec.mechanisms:
            value = _point_value(
                conn,
                points[mechanism],
                (name,),
                exp_scale.workload_scale,
                spec.include_baseline,
            )
            rendered.append(value)
            if value is None:
                complete[mechanism] = False
                row.append(MISSING)
            else:
                per_mech[mechanism].append(value.value)
                row.append(value.render())
        table.append(row)
    if len(workloads) > 1:
        gmean_row = ["**gmean**"]
        for mechanism in spec.mechanisms:
            if complete[mechanism] and per_mech[mechanism]:
                gmean_row.append(f"{geometric_mean(per_mech[mechanism]):.4f}")
            else:
                gmean_row.append(MISSING)
        table.append(gmean_row)
    lines.extend(_markdown_table(headers, table))
    lines.append("")
    lines.extend(_footer(rendered))
    return "\n".join(lines).rstrip() + "\n"


def render_trajectory(
    conn: sqlite3.Connection,
    sweep: str | None = None,
    scale: str | None = None,
    workload_set: str | None = None,
) -> str:
    """Longitudinal benchmark trajectory: bench payloads across refreshes.

    Joins ``bench_history`` (one row per payload *change*) with the
    ``refreshes`` provenance, so the table reads as "at commit X under
    engine tag Y, benchmark Z reported speedup S" — the cross-refresh
    view the ROADMAP's longitudinal tracking asks for. The ``sweep`` /
    ``scale`` arguments are accepted for CLI uniformity and ignored.
    """
    del sweep, scale, workload_set
    rows = conn.execute(
        "SELECT h.bench, h.refresh_id, r.bench_commit, r.engine_tag,"
        " h.speedup, h.content_digest"
        " FROM bench_history AS h JOIN refreshes AS r"
        " ON h.refresh_id = r.refresh_id"
        " ORDER BY h.bench, h.refresh_id"
    ).fetchall()
    lines = ["### trajectory — benchmark payloads across refreshes", ""]
    if not rows:
        lines.append("_no benchmark payloads ingested yet_")
        return "\n".join(lines).rstrip() + "\n"
    headers = ["bench", "refresh", "commit", "engine tag", "speedup", "payload digest"]
    table = []
    for row in rows:
        speedup = f"{float(row[4]):.4f}" if row[4] is not None else MISSING
        table.append(
            [str(row[0]), str(int(row[1])), str(row[2]), str(row[3]), speedup, str(row[5])]
        )
    lines.extend(_markdown_table(headers, table))
    return "\n".join(lines).rstrip() + "\n"


#: Query name -> renderer; RPL006 pins this against ``QUERY_NAMES`` in
#: the package ``__init__`` so the CLI, docs, and registry cannot drift.
QUERIES = {
    "contour": render_contour,
    "sensitivity": render_sensitivity,
    "trajectory": render_trajectory,
}
