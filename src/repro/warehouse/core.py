"""The SQLite result warehouse: consolidation, change history, provenance.

The stores the runtime writes — loose result records, compacted shards
(``engine-v*`` tags) and analytic estimates (``analytic-v*`` tags) — are
optimized for *producing* results. Answering questions across them
(contour tables, sensitivity matrices, longitudinal benchmark
trajectories) meant ad-hoc JSONL spelunking. The warehouse is the
queryable snapshot: one SQLite database (stdlib :mod:`sqlite3`, WAL
mode) living beside the tag directories::

    <cache-dir>/warehouse.sqlite

``python -m repro.warehouse refresh`` scans every tag directory (loose
records *and* shard entries, loose winning on a duplicate key — the
same resolution :class:`~repro.runtime.cache.ResultCache` applies) plus
the ``BENCH_*.json`` benchmark payloads, and **consolidates
incrementally**: rows are keyed by ``(workload, scale token, config
digest, schema tag, fidelity tier)`` and each refresh classifies every
key as

* **insert** — never seen before,
* **update** — content changed under an existing key,
* **reactivate** — a previously deactivated key reappeared on disk,
* **deactivate** — an active key vanished from disk (pruned tag,
  deleted record),

or *unchanged* (touched not at all — the refresh is idempotent, and a
re-run against unchanged stores writes zero revision rows). Every
applied change appends to the ``revisions`` table, and every refresh
records its provenance in ``refreshes``: worker id, the engine and
analytic schema tags in force, and the bench commit. The whole
consolidation runs in **one transaction**, so a refresh SIGKILLed at
any instant leaves the previous snapshot fully readable and contributes
*zero* revision rows — the next refresh converges to exactly the same
state with an exactly-once change history (``tests/test_faults.py``
pins this with real subprocesses via the ``warehouse-refresh``
faultpoint).

The exact/analytic tiers stay isolated at the SQL layer: the fidelity
tier is part of the primary key, analytic rows carry their
self-reported ``analytic_rel_err_bound``, and the canned queries
(:mod:`repro.warehouse.queries`) always prefer exact rows — an estimate
can never shadow an exact result.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

from ..analytic.store import ANALYTIC_SCHEMA_TAG
from ..errors import ConfigError
from ..runtime.cache import SCHEMA_TAG as ENGINE_SCHEMA_TAG
from ..runtime.faultpoints import maybe_fault

#: Bump on warehouse *database* format changes (tables, key shape).
WAREHOUSE_SCHEMA = "warehouse-v1"

#: The database filename, beside the schema-tag directories.
DB_NAME = "warehouse.sqlite"

#: Benchmark payloads ingested for the ``trajectory`` query and the gate.
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: The warehouse's on-disk table shapes. Any edit here is an on-disk
#: format change: bump :data:`WAREHOUSE_SCHEMA` and refresh the
#: reprolint baseline (RPL004 fingerprints this tuple).
_DDL: tuple[str, ...] = (
    "CREATE TABLE IF NOT EXISTS meta (\n"
    "  key TEXT PRIMARY KEY,\n"
    "  value TEXT NOT NULL\n"
    ")",
    "CREATE TABLE IF NOT EXISTS cells (\n"
    "  workload TEXT NOT NULL,\n"
    "  scale TEXT NOT NULL,\n"
    "  config_digest TEXT NOT NULL,\n"
    "  schema_tag TEXT NOT NULL,\n"
    "  fidelity TEXT NOT NULL,\n"
    "  mechanism TEXT NOT NULL,\n"
    "  ipc REAL,\n"
    "  cycles REAL,\n"
    "  retired_instrs REAL,\n"
    "  analytic_rel_err_bound REAL NOT NULL DEFAULT 0.0,\n"
    "  raw TEXT NOT NULL,\n"
    "  content_digest TEXT NOT NULL,\n"
    "  active INTEGER NOT NULL DEFAULT 1,\n"
    "  first_seen INTEGER NOT NULL,\n"
    "  last_seen INTEGER NOT NULL,\n"
    "  PRIMARY KEY (workload, scale, config_digest, schema_tag, fidelity)\n"
    ")",
    "CREATE TABLE IF NOT EXISTS refreshes (\n"
    "  refresh_id INTEGER PRIMARY KEY AUTOINCREMENT,\n"
    "  started_at REAL NOT NULL,\n"
    "  worker TEXT NOT NULL,\n"
    "  engine_tag TEXT NOT NULL,\n"
    "  analytic_tag TEXT NOT NULL,\n"
    "  bench_commit TEXT NOT NULL,\n"
    "  inserted INTEGER NOT NULL DEFAULT 0,\n"
    "  updated INTEGER NOT NULL DEFAULT 0,\n"
    "  reactivated INTEGER NOT NULL DEFAULT 0,\n"
    "  deactivated INTEGER NOT NULL DEFAULT 0,\n"
    "  unchanged INTEGER NOT NULL DEFAULT 0\n"
    ")",
    "CREATE TABLE IF NOT EXISTS revisions (\n"
    "  revision_id INTEGER PRIMARY KEY AUTOINCREMENT,\n"
    "  refresh_id INTEGER NOT NULL,\n"
    "  kind TEXT NOT NULL,\n"
    "  action TEXT NOT NULL,\n"
    "  workload TEXT NOT NULL,\n"
    "  scale TEXT NOT NULL DEFAULT '',\n"
    "  config_digest TEXT NOT NULL DEFAULT '',\n"
    "  schema_tag TEXT NOT NULL DEFAULT '',\n"
    "  fidelity TEXT NOT NULL DEFAULT '',\n"
    "  content_digest TEXT NOT NULL DEFAULT ''\n"
    ")",
    "CREATE TABLE IF NOT EXISTS benches (\n"
    "  bench TEXT PRIMARY KEY,\n"
    "  content_digest TEXT NOT NULL,\n"
    "  payload TEXT NOT NULL,\n"
    "  active INTEGER NOT NULL DEFAULT 1,\n"
    "  first_seen INTEGER NOT NULL,\n"
    "  last_seen INTEGER NOT NULL\n"
    ")",
    "CREATE TABLE IF NOT EXISTS bench_history (\n"
    "  bench TEXT NOT NULL,\n"
    "  refresh_id INTEGER NOT NULL,\n"
    "  content_digest TEXT NOT NULL,\n"
    "  speedup REAL,\n"
    "  payload TEXT NOT NULL,\n"
    "  PRIMARY KEY (bench, refresh_id)\n"
    ")",
)


def db_path(cache_dir: str | os.PathLike[str]) -> Path:
    """Where the warehouse database lives inside a cache directory."""
    return Path(cache_dir) / DB_NAME


def connect(cache_dir: str | os.PathLike[str]) -> sqlite3.Connection:
    """Open (creating if needed) the warehouse database, WAL mode.

    The schema is created and the :data:`WAREHOUSE_SCHEMA` tag committed
    *before* any consolidation, so a reader — or a crash-recovery check —
    can always open the file and query it, however a later refresh dies.
    A database written by a different warehouse schema is refused rather
    than misread.
    """
    path = db_path(cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(path)
    conn.isolation_level = None  # explicit BEGIN/COMMIT only
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("BEGIN IMMEDIATE")
    for statement in _DDL:
        conn.execute(statement)
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema', ?)",
            (WAREHOUSE_SCHEMA,),
        )
    elif row[0] != WAREHOUSE_SCHEMA:
        conn.execute("ROLLBACK")
        conn.close()
        raise ConfigError(
            f"{path} was written by warehouse schema {row[0]!r} (this code "
            f"is {WAREHOUSE_SCHEMA!r}); delete the file and re-run "
            f"`python -m repro.warehouse refresh` to rebuild it"
        )
    conn.execute("COMMIT")
    return conn


# ---------------------------------------------------------------------------
# Source scanning (loose records, shards, analytic estimates, bench payloads)
# ---------------------------------------------------------------------------


#: (workload, scale token, config digest, schema tag, fidelity tier).
CellKey = tuple[str, str, str, str, str]


@dataclass(frozen=True)
class SourceCell:
    """One readable result record found on disk during a refresh scan."""

    key: CellKey
    mechanism: str
    raw: dict[str, object]
    content_digest: str


def _content_digest(mechanism: str, raw: dict[str, object]) -> str:
    payload = json.dumps(
        {"mechanism": mechanism, "raw": raw}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _record_cell(record: object, tag: str, fidelity: str) -> SourceCell | None:
    """Validate one on-disk record into a :class:`SourceCell`, or drop it."""
    if not isinstance(record, dict):
        return None
    if record.get("schema") != tag:
        return None
    workload = record.get("workload")
    scale = record.get("scale")
    digest = record.get("config_digest")
    raw = record.get("raw")
    if not (
        isinstance(workload, str)
        and isinstance(scale, str)
        and isinstance(digest, str)
        and isinstance(raw, dict)
    ):
        return None
    mechanism = record.get("mechanism")
    if not isinstance(mechanism, str):
        mechanism = ""
    return SourceCell(
        key=(workload, scale, digest, tag, fidelity),
        mechanism=mechanism,
        raw=raw,
        content_digest=_content_digest(mechanism, raw),
    )


def _scan_tag_dir(tag_dir: Path, fidelity: str) -> dict[CellKey, SourceCell]:
    """Every readable record under one schema-tag directory.

    Shard entries are read first and loose files second, so a key present
    in both layouts resolves loose-wins — the exact resolution
    :class:`~repro.runtime.cache.ResultCache` applies on reads, which is
    what makes the consolidated warehouse bit-identical whether the cache
    is flat, sharded, or mixed.
    """
    from ..runtime.shards import SHARD_NAME, read_shard

    tag = tag_dir.name
    cells: dict[CellKey, SourceCell] = {}
    for workload_dir in sorted(p for p in tag_dir.iterdir() if p.is_dir()):
        if fidelity == "exact":
            shard = workload_dir / SHARD_NAME
            if shard.is_file():
                for record in read_shard(shard).values():
                    cell = _record_cell(record, tag, fidelity)
                    if cell is not None:
                        cells[cell.key] = cell
        for path in sorted(workload_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # torn or foreign file: not a record
            cell = _record_cell(record, tag, fidelity)
            if cell is not None:
                cells[cell.key] = cell
    return cells


def scan_sources(cache_dir: str | os.PathLike[str]) -> dict[CellKey, SourceCell]:
    """Every readable result record in a cache directory, both tiers.

    Engine tags (``engine-v*``) contribute exact cells from loose records
    and shard entries; analytic tags (``analytic-v*``) contribute
    estimated cells (loose-only by construction). Unreadable or
    wrongly-shaped records are skipped, never raised — the warehouse
    consolidates what is readable, exactly like the caches themselves.
    """
    from ..analytic.store import _TAG_DIR_RE as ANALYTIC_TAG_RE
    from ..runtime.cache import _TAG_DIR_RE as ENGINE_TAG_RE

    root = Path(cache_dir)
    cells: dict[CellKey, SourceCell] = {}
    if not root.is_dir():
        return cells
    for tag_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        if ENGINE_TAG_RE.match(tag_dir.name):
            cells.update(_scan_tag_dir(tag_dir, "exact"))
        elif ANALYTIC_TAG_RE.match(tag_dir.name):
            cells.update(_scan_tag_dir(tag_dir, "analytic"))
    return cells


def scan_benches(
    results_dir: str | os.PathLike[str] | None,
) -> dict[str, dict[str, object]]:
    """Benchmark payloads (``BENCH_*.json``) to ingest, by bench name."""
    if results_dir is None:
        return {}
    root = Path(results_dir)
    benches: dict[str, dict[str, object]] = {}
    if not root.is_dir():
        return benches
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            benches[path.stem.removeprefix("BENCH_")] = payload
    return benches


def _as_float(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _cell_metrics(raw: dict[str, object]) -> tuple[float | None, float | None, float | None]:
    """(ipc, cycles, retired) extracted from a record's raw counters."""
    cycles = _as_float(raw.get("cycles"))
    retired = _as_float(raw.get("retired_instrs"))
    ipc = None
    if cycles is not None and retired is not None and cycles > 0:
        ipc = retired / cycles
    return ipc, cycles, retired


def _bench_commit() -> str:
    """The current source commit, for refresh provenance (best effort)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parents[3],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


# ---------------------------------------------------------------------------
# Incremental consolidation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RefreshStats:
    """What one ``refresh`` run changed (all zero = already converged)."""

    refresh_id: int
    inserted: int = 0
    updated: int = 0
    reactivated: int = 0
    deactivated: int = 0
    unchanged: int = 0
    benches_changed: int = 0
    benches_total: int = 0

    @property
    def changes(self) -> int:
        return self.inserted + self.updated + self.reactivated + self.deactivated

    def summary(self) -> str:
        return (
            f"refresh #{self.refresh_id}: +{self.inserted} inserted, "
            f"~{self.updated} updated, ^{self.reactivated} reactivated, "
            f"-{self.deactivated} deactivated, {self.unchanged} unchanged, "
            f"{self.benches_changed}/{self.benches_total} bench payload(s) changed"
        )


def _apply_cell_change(
    conn: sqlite3.Connection,
    refresh_id: int,
    action: str,
    key: CellKey,
    cell: SourceCell | None,
) -> None:
    """One consolidation step: mutate the row, append its revision."""
    maybe_fault("warehouse-refresh")
    workload, scale, digest, tag, fidelity = key
    content = cell.content_digest if cell is not None else ""
    if action == "insert" and cell is not None:
        ipc, cycles, retired = _cell_metrics(cell.raw)
        bound = _as_float(cell.raw.get("analytic_rel_err_bound")) or 0.0
        conn.execute(
            "INSERT INTO cells (workload, scale, config_digest, schema_tag,"
            " fidelity, mechanism, ipc, cycles, retired_instrs,"
            " analytic_rel_err_bound, raw, content_digest, active,"
            " first_seen, last_seen)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1, ?, ?)",
            (
                workload,
                scale,
                digest,
                tag,
                fidelity,
                cell.mechanism,
                ipc,
                cycles,
                retired,
                bound,
                json.dumps(cell.raw, sort_keys=True, separators=(",", ":")),
                cell.content_digest,
                refresh_id,
                refresh_id,
            ),
        )
    elif action in ("update", "reactivate") and cell is not None:
        ipc, cycles, retired = _cell_metrics(cell.raw)
        bound = _as_float(cell.raw.get("analytic_rel_err_bound")) or 0.0
        conn.execute(
            "UPDATE cells SET mechanism = ?, ipc = ?, cycles = ?,"
            " retired_instrs = ?, analytic_rel_err_bound = ?, raw = ?,"
            " content_digest = ?, active = 1, last_seen = ?"
            " WHERE workload = ? AND scale = ? AND config_digest = ?"
            " AND schema_tag = ? AND fidelity = ?",
            (
                cell.mechanism,
                ipc,
                cycles,
                retired,
                bound,
                json.dumps(cell.raw, sort_keys=True, separators=(",", ":")),
                cell.content_digest,
                refresh_id,
                workload,
                scale,
                digest,
                tag,
                fidelity,
            ),
        )
    else:  # deactivate
        conn.execute(
            "UPDATE cells SET active = 0, last_seen = ?"
            " WHERE workload = ? AND scale = ? AND config_digest = ?"
            " AND schema_tag = ? AND fidelity = ?",
            (refresh_id, workload, scale, digest, tag, fidelity),
        )
    conn.execute(
        "INSERT INTO revisions (refresh_id, kind, action, workload, scale,"
        " config_digest, schema_tag, fidelity, content_digest)"
        " VALUES (?, 'cell', ?, ?, ?, ?, ?, ?, ?)",
        (refresh_id, action, workload, scale, digest, tag, fidelity, content),
    )


def _consolidate_benches(
    conn: sqlite3.Connection,
    refresh_id: int,
    benches: dict[str, dict[str, object]],
) -> int:
    """Insert/update/reactivate/deactivate bench payload rows; count changes."""
    existing: dict[str, tuple[str, int]] = {
        str(row[0]): (str(row[1]), int(row[2]))
        for row in conn.execute("SELECT bench, content_digest, active FROM benches")
    }
    changed = 0
    for name in sorted(benches):
        payload = benches[name]
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        content = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        current = existing.get(name)
        if current is None:
            action = "insert"
        elif current[0] != content:
            action = "update"
        elif current[1] == 0:
            action = "reactivate"
        else:
            continue
        maybe_fault("warehouse-refresh")
        changed += 1
        conn.execute(
            "INSERT INTO benches (bench, content_digest, payload, active,"
            " first_seen, last_seen) VALUES (?, ?, ?, 1, ?, ?)"
            " ON CONFLICT(bench) DO UPDATE SET content_digest = ?,"
            " payload = ?, active = 1, last_seen = ?",
            (name, content, text, refresh_id, refresh_id, content, text, refresh_id),
        )
        conn.execute(
            "INSERT INTO revisions (refresh_id, kind, action, workload,"
            " content_digest) VALUES (?, 'bench', ?, ?, ?)",
            (refresh_id, action, name, content),
        )
        if action in ("insert", "update"):
            conn.execute(
                "INSERT OR REPLACE INTO bench_history (bench, refresh_id,"
                " content_digest, speedup, payload) VALUES (?, ?, ?, ?, ?)",
                (name, refresh_id, content, _as_float(payload.get("speedup")), text),
            )
    for name in sorted(existing):
        if name in benches or existing[name][1] == 0:
            continue
        maybe_fault("warehouse-refresh")
        changed += 1
        conn.execute(
            "UPDATE benches SET active = 0, last_seen = ? WHERE bench = ?",
            (refresh_id, name),
        )
        conn.execute(
            "INSERT INTO revisions (refresh_id, kind, action, workload,"
            " content_digest) VALUES (?, 'bench', 'deactivate', ?, '')",
            (refresh_id, name),
        )
    return changed


def refresh_warehouse(
    cache_dir: str | os.PathLike[str],
    results_dir: str | os.PathLike[str] | None = None,
    worker: str | None = None,
) -> RefreshStats:
    """Scan the stores and consolidate the warehouse; returns what changed.

    Idempotent (a second run against unchanged stores applies zero
    changes) and crash-safe (the scan happens outside any transaction;
    every mutation — including the ``refreshes`` provenance row — commits
    atomically at the end, so a SIGKILL mid-consolidation leaves the
    previous snapshot intact and no partial revision history).
    ``results_dir=None`` skips bench-payload ingestion.
    """
    source = scan_sources(cache_dir)
    benches = scan_benches(results_dir)
    conn = connect(cache_dir)
    try:
        conn.execute("BEGIN IMMEDIATE")
        cursor = conn.execute(
            "INSERT INTO refreshes (started_at, worker, engine_tag,"
            " analytic_tag, bench_commit) VALUES (?, ?, ?, ?, ?)",
            (
                time.time(),
                worker or f"{socket.gethostname()}-{os.getpid()}",
                ENGINE_SCHEMA_TAG,
                ANALYTIC_SCHEMA_TAG,
                _bench_commit(),
            ),
        )
        refresh_id = int(cursor.lastrowid or 0)
        existing: dict[CellKey, tuple[str, int]] = {
            (str(r[0]), str(r[1]), str(r[2]), str(r[3]), str(r[4])): (
                str(r[5]),
                int(r[6]),
            )
            for r in conn.execute(
                "SELECT workload, scale, config_digest, schema_tag, fidelity,"
                " content_digest, active FROM cells"
            )
        }
        counts = {"insert": 0, "update": 0, "reactivate": 0, "deactivate": 0}
        unchanged = 0
        for key in sorted(source):
            cell = source[key]
            current = existing.get(key)
            if current is None:
                action = "insert"
            elif current[0] != cell.content_digest:
                action = "update"
            elif current[1] == 0:
                action = "reactivate"
            else:
                unchanged += 1
                continue
            counts[action] += 1
            _apply_cell_change(conn, refresh_id, action, key, cell)
        for key in sorted(existing):
            if key in source or existing[key][1] == 0:
                continue
            counts["deactivate"] += 1
            _apply_cell_change(conn, refresh_id, "deactivate", key, None)
        benches_changed = _consolidate_benches(conn, refresh_id, benches)
        conn.execute(
            "UPDATE refreshes SET inserted = ?, updated = ?, reactivated = ?,"
            " deactivated = ?, unchanged = ? WHERE refresh_id = ?",
            (
                counts["insert"],
                counts["update"],
                counts["reactivate"],
                counts["deactivate"],
                unchanged,
                refresh_id,
            ),
        )
        conn.execute("COMMIT")
    finally:
        conn.close()
    return RefreshStats(
        refresh_id=refresh_id,
        inserted=counts["insert"],
        updated=counts["update"],
        reactivated=counts["reactivate"],
        deactivated=counts["deactivate"],
        unchanged=unchanged,
        benches_changed=benches_changed,
        benches_total=len(benches),
    )


# ---------------------------------------------------------------------------
# Snapshot introspection (the ``status`` CLI, and test assertions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarehouseStatus:
    """Aggregate counts of one warehouse database."""

    schema: str
    active_cells: int
    inactive_cells: int
    refreshes: int
    revisions: int
    benches: int
    #: (schema_tag, fidelity) -> active row count, sorted by tag.
    by_tag: tuple[tuple[str, str, int], ...]


def read_status(conn: sqlite3.Connection) -> WarehouseStatus:
    def one(sql: str) -> int:
        row = conn.execute(sql).fetchone()
        return int(row[0]) if row is not None else 0

    schema_row = conn.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
    by_tag = tuple(
        (str(r[0]), str(r[1]), int(r[2]))
        for r in conn.execute(
            "SELECT schema_tag, fidelity, COUNT(*) FROM cells WHERE active = 1"
            " GROUP BY schema_tag, fidelity ORDER BY schema_tag, fidelity"
        )
    )
    return WarehouseStatus(
        schema=str(schema_row[0]) if schema_row is not None else "",
        active_cells=one("SELECT COUNT(*) FROM cells WHERE active = 1"),
        inactive_cells=one("SELECT COUNT(*) FROM cells WHERE active = 0"),
        refreshes=one("SELECT COUNT(*) FROM refreshes"),
        revisions=one("SELECT COUNT(*) FROM revisions"),
        benches=one("SELECT COUNT(*) FROM benches WHERE active = 1"),
        by_tag=by_tag,
    )
