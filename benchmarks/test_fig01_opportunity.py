"""Benchmark: regenerate Figure 1 (perfect L1-I / perfect BTB opportunity)."""

from conftest import run_once

from repro.experiments import opportunity


def test_figure1_opportunity(benchmark, record_exhibit):
    result = run_once(benchmark, opportunity.run)
    record_exhibit(result)

    workload_rows = result.rows[:-1]  # last row is the average
    for row in workload_rows:
        name, _, perfect_l1i, perfect_both, btb_adds = row
        # Paper shape: perfect L1-I always helps; perfect BTB adds on top.
        assert perfect_l1i > 1.0, name
        assert perfect_both >= perfect_l1i - 1e-9, name

    by_name = {row[0]: row for row in workload_rows}
    # Streaming shows the smallest opportunity; the OLTP profiles carry an
    # above-average BTB gain (at full scale DB2 is the outright maximum).
    assert by_name["streaming"][2] == min(r[2] for r in workload_rows)
    avg_btb_gain = sum(r[4] for r in workload_rows) / len(workload_rows)
    assert by_name["db2"][4] > avg_btb_gain
    assert by_name["streaming"][4] < avg_btb_gain
