"""Bench guard: hybrid fidelity vs all-exact, on the dense grid.

Runs one workload's full column of the ROADMAP's ``dense-latency-btb``
sweep at quick scale — the same 120 cells ``test_batched_grid.py``
measures — once with every cell on the exact engine and once under
``--fidelity hybrid`` (:mod:`repro.analytic`): per series, a 3x2 anchor
grid runs exact, the fitted closed-form model synthesizes the rest, and
high-uncertainty or extrapolating cells are re-dispatched exact. Both
modes use fresh runtimes with no persistent stores, so each pays its real
cost.

Two pins, each with generous CI headroom below the measured values:

* **exact-cell reduction** — hybrid must execute >= 5x fewer
  exact-engine cells than the grid has (the planner's 3-series x 6-anchor
  layout gives 18 of 120, a 6.7x reduction);
* **wall-clock speedup** — the hybrid pass must finish >= 3x faster than
  the all-exact pass (measured ~6x: model fitting and prediction are
  microseconds against engine-seconds).

Every analytic cell's IPC is additionally checked against the exact run's
ground truth: the relative error must stay within the model's own
reported bound — the bench would fail before it would publish a fast but
dishonest number. The run leaves machine-readable numbers in
``benchmarks/results/BENCH_analytic_hybrid.json``; the CI benchmarks job
publishes the analytic-vs-exact error table in its step summary.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.analytic import is_analytic, reported_bound
from repro.experiments.common import get_scale
from repro.experiments.sweeps import get_sweep
from repro.runtime import ExperimentRuntime
from repro.workloads.workload import load_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The measured column: one paper workload's slice of the dense grid.
WORKLOAD = "apache"

#: ISSUE acceptance floor: >= 5x fewer exact-engine cell executions.
REDUCTION_FLOOR = 5.0

#: Measured ~6x end-to-end; 3x leaves CI-runner headroom.
SPEEDUP_FLOOR = 3.0


def _dense_column(workload: str) -> list:
    """The deduplicated dense-grid jobs for one workload, in grid order."""
    spec = get_sweep("dense-latency-btb")
    scale = get_scale("quick")
    seen, jobs = set(), []
    for job in spec.jobs(scale):
        if job.workload != workload or job.key in seen:
            continue
        seen.add(job.key)
        jobs.append(job)
    return jobs


def test_hybrid_dense_grid_vs_all_exact():
    jobs = _dense_column(WORKLOAD)
    assert len(jobs) == 120
    scale = get_scale("quick")
    # Build the workload once, outside both timings.
    load_workload(WORKLOAD, scale=scale.workload_scale)

    start = time.perf_counter()
    exact_results = ExperimentRuntime().run_many(jobs)
    t_exact = time.perf_counter() - start

    hybrid_runtime = ExperimentRuntime(fidelity="hybrid")
    start = time.perf_counter()
    hybrid_results = hybrid_runtime.run_many(jobs)
    t_hybrid = time.perf_counter() - start

    exact_cells = hybrid_runtime.executed
    reduction = len(jobs) / exact_cells if exact_cells else float("inf")
    speedup = t_exact / t_hybrid

    errors = []
    bounds_ok = True
    for truth, estimate in zip(exact_results, hybrid_results):
        if not is_analytic(estimate):
            assert estimate.raw == truth.raw  # exact cells are bit-identical
            continue
        err = abs(estimate.ipc - truth.ipc) / truth.ipc
        errors.append(err)
        if err > reported_bound(estimate):
            bounds_ok = False

    payload = {
        "sweep": "dense-latency-btb",
        "scale": "quick",
        "workload": WORKLOAD,
        "cells": len(jobs),
        "exact_cells": exact_cells,
        "analytic_cells": hybrid_runtime.estimated,
        "reduction": round(reduction, 2),
        "reduction_floor": REDUCTION_FLOOR,
        "all_exact": {
            "seconds": round(t_exact, 2),
            "cells_per_sec": round(len(jobs) / t_exact, 2),
        },
        "hybrid": {
            "seconds": round(t_hybrid, 2),
            "cells_per_sec": round(len(jobs) / t_hybrid, 2),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "max_rel_err": round(max(errors), 5) if errors else 0.0,
        "mean_rel_err": (
            round(sum(errors) / len(errors), 5) if errors else 0.0
        ),
        "bounds_ok": bounds_ok,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_analytic_hybrid.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{WORKLOAD} dense column ({len(jobs)} cells): all-exact "
        f"{t_exact:.1f}s, hybrid {t_hybrid:.1f}s with {exact_cells} exact "
        f"cells ({reduction:.1f}x fewer, speedup {speedup:.2f}x, "
        f"max err {payload['max_rel_err']:.4f}) -> {path}"
    )

    assert bounds_ok, "an analytic cell's error exceeded its reported bound"
    assert reduction >= REDUCTION_FLOOR, (
        f"hybrid ran {exact_cells} exact cells of {len(jobs)} "
        f"({reduction:.1f}x < floor {REDUCTION_FLOOR}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"hybrid regressed: {t_hybrid:.1f}s vs all-exact {t_exact:.1f}s "
        f"(speedup {speedup:.2f}x < floor {SPEEDUP_FLOOR}x)"
    )
