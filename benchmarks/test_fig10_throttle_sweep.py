"""Benchmark: regenerate Figure 10 (next-N-block prefetch under BTB miss)."""

from conftest import run_once

from repro.experiments import throttle_sweep


def test_figure10_throttle_sweep(benchmark, record_exhibit):
    result = run_once(benchmark, throttle_sweep.run)
    record_exhibit(result)

    gmean = result.row_for("gmean")
    by_policy = dict(zip(result.headers[1:], [float(v) for v in gmean[1:]]))

    # Paper: some sequential prefetching under a miss beats none on average.
    # The paper's degradation beyond 2 blocks needs 16 cores contending for
    # LLC/NoC bandwidth; our single-core model under-prices that waste, so
    # we assert the monotone "throttled beats none" part plus diminishing
    # returns, not an interior optimum (see EXPERIMENTS.md).
    assert by_policy["2 Blocks"] >= by_policy["None"]
    gain_0_to_2 = by_policy["2 Blocks"] - by_policy["None"]
    gain_2_to_8 = by_policy["8 Blocks"] - by_policy["2 Blocks"]
    assert gain_0_to_2 > gain_2_to_8  # diminishing returns past next-2

    # DB2 benefits materially from throttled prefetch (paper: +12% for
    # next-2 vs none; which workload gains *most* is scale-sensitive).
    db2 = result.row_for("db2")
    db2_gain = float(db2[3]) - float(db2[1])  # 2 Blocks vs None
    assert db2_gain > 0.03
