"""Benchmark: regenerate Figure 2 (FDIP coverage vs predictor and latency)."""

from conftest import run_once

from repro.experiments import coverage_vs_latency


def test_figure2_coverage_vs_latency(benchmark, record_exhibit):
    result = run_once(benchmark, coverage_vs_latency.run)
    record_exhibit(result)

    rows = {row[0]: [float(v) for v in row[1:]] for row in result.rows}
    tage = rows["FDIP TAGE"]
    bimodal = rows["FDIP 2-bit"]
    never = rows["FDIP Never-Taken"]
    pif = rows["PIF"]

    # Paper shape: FDIP+TAGE is PIF-class coverage across latencies.
    for t, p in zip(tage, pif):
        assert t > p - 0.15
    # TAGE >= 2-bit >= never-taken ordering holds on average...
    assert sum(tage) >= sum(bimodal) - 0.05 * len(tage)
    # ...and even never-taken attains much of TAGE's coverage (paper III-A).
    assert sum(never) > 0.55 * sum(tage)
