"""Benchmark: ablations of Boomerang's design choices (Section IV-C)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablations(benchmark, record_exhibit):
    result = run_once(benchmark, ablations.run)
    record_exhibit(result)

    def series(knob):
        return {
            row[1]: float(row[2]) for row in result.rows if row[0] == knob
        }

    buffers = series("btb_prefetch_buffer")
    ftq = series("ftq_depth")
    predecode = series("predecode_latency")

    # A 32-entry BTB prefetch buffer is solidly better than a 1-entry one.
    assert buffers[32] > buffers[1] - 0.01

    # Deep FTQs beat shallow ones (run-ahead is the whole point).
    assert ftq[32] > ftq[8] - 0.005

    # Cheaper predecode never hurts.
    assert predecode[1] >= predecode[6] - 0.01
