"""Benchmark: regenerate Figure 8 (front-end stall-cycle coverage)."""

from conftest import run_once

from repro.experiments import stall_coverage


def test_figure8_stall_coverage(benchmark, record_exhibit):
    result = run_once(benchmark, stall_coverage.run)
    record_exhibit(result)

    avg = result.row_for("avg")
    by_mech = dict(zip(result.headers[1:], [float(v) for v in avg[1:]]))

    # Everyone covers something; control-flow-aware schemes cover a lot.
    for mech, cov in by_mech.items():
        assert cov > 0.10, mech
    assert by_mech["FDIP"] > by_mech["Next Line"]
    assert by_mech["Boomerang"] > 0.45  # paper: 61% average

    # SHIFT's LLC-resident metadata never beats its own PIF-style engine by
    # much; Confluence's coverage tracks SHIFT (same prefetcher).
    assert abs(by_mech["Confluence"] - by_mech["SHIFT"]) < 0.15
