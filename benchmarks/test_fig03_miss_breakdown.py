"""Benchmark: regenerate Figure 3 (miss-cycle source breakdown)."""

from conftest import run_once

from repro.experiments import miss_breakdown


def test_figure3_miss_breakdown(benchmark, record_exhibit):
    result = run_once(benchmark, miss_breakdown.run)
    record_exhibit(result, float_fmt="{:.1f}")

    base = result.row_for("Base 2K")
    nl = result.row_for("Next-Line 2K")
    # Baseline normalizes to 100% of itself.
    assert float(base[4]) == 100.0 if abs(float(base[4]) - 100.0) < 0.01 else True
    assert abs(float(base[4]) - 100.0) < 0.5

    # Sequential misses are a major class in the baseline (paper: 40-54%).
    seq_share = float(base[1]) / float(base[4])
    assert 0.25 < seq_share < 0.75

    # Next-line attacks the sequential class hardest.
    seq_covered = float(base[1]) - float(nl[1])
    uncond_covered = float(base[3]) - float(nl[3])
    assert seq_covered > uncond_covered

    # FDIP with a bigger BTB improves mainly the unconditional class.
    fdip_rows = [r for r in result.rows if str(r[0]).startswith("FDIP")]
    small, large = fdip_rows[0], fdip_rows[-1]
    assert float(large[3]) <= float(small[3]) + 0.5
    # Every prefetcher removes most baseline miss cycles overall.
    assert float(large[4]) < 60.0
