"""Benchmark configuration.

Each benchmark regenerates one paper exhibit via ``repro.experiments`` and
asserts its qualitative shape. Tables are printed and also written to
``benchmarks/results/<exhibit>.txt`` so a ``--benchmark-only`` run leaves
the regenerated figures on disk.

Scale defaults to ``quick`` here (set ``REPRO_SCALE`` to override): the
benchmark suite is a regeneration harness, and quick scale preserves every
qualitative shape while keeping the full suite to a few minutes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

os.environ.setdefault("REPRO_SCALE", "quick")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_exhibit():
    """Write an ExperimentResult's table to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result, float_fmt: str = "{:.3f}") -> None:
        text = result.to_table(float_fmt=float_fmt)
        (RESULTS_DIR / f"{result.exhibit}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
