"""Benchmark configuration.

Each benchmark regenerates one paper exhibit via ``repro.experiments`` and
asserts its qualitative shape. Tables are printed and also written to
``benchmarks/results/<exhibit>.txt`` so a ``--benchmark-only`` run leaves
the regenerated figures on disk.

Scale defaults to ``quick`` here (set ``REPRO_SCALE`` to override): the
benchmark suite is a regeneration harness, and quick scale preserves every
qualitative shape while keeping the full suite to a few minutes.

While a benchmark module runs, the shared runtime is pointed at the
persistent disk cache (``benchmarks/.simcache`` unless ``REPRO_CACHE_DIR``
says otherwise), so re-running the figure benchmarks does not re-pay for
the workload x mechanism grid: records are keyed by the exhaustive config
digest and versioned by a schema tag fingerprinting the simulator source,
so they can never serve stale results across engine or config changes (any
semantic edit orphans the records). The cache is scoped to benchmark
modules via a fixture — unit tests under ``tests/`` stay memory-only even
when pytest collects both directories. Delete the directory to force cold
runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.runtime import ResultCache, get_runtime

os.environ.setdefault("REPRO_SCALE", "quick")

CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or str(
    pathlib.Path(__file__).parent / ".simcache"
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="module", autouse=True)
def shared_sim_cache():
    """Attach the persistent disk cache to the runtime for this module."""
    runtime = get_runtime()
    prev = runtime.disk
    runtime.disk = ResultCache(CACHE_DIR)
    yield
    runtime.disk = prev


@pytest.fixture(scope="session")
def record_exhibit():
    """Write an ExperimentResult's table to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result, float_fmt: str = "{:.3f}") -> None:
        text = result.to_table(float_fmt=float_fmt)
        (RESULTS_DIR / f"{result.exhibit}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
