"""Benchmark: regenerate the Section VI-D storage comparison."""

from conftest import run_once

from repro.experiments import storage_costs


def test_storage_costs(benchmark, record_exhibit):
    result = run_once(benchmark, storage_costs.run)
    record_exhibit(result)

    boom = result.row_for("boomerang")
    assert boom[4] == "540 B"  # the paper's exact number

    pif = result.row_for("pif")
    assert "KB" in str(pif[4])

    conf = result.row_for("confluence")
    assert "KB" in str(conf[4])


def test_storage_scales_with_consolidation(benchmark, record_exhibit):
    result = run_once(benchmark, lambda: storage_costs.run(n_workloads=4))
    conf = result.row_for("confluence")
    boom = result.row_for("boomerang")
    # Boomerang is flat; Confluence's carve grows with each workload.
    assert boom[4] == "540 B"
    assert conf[2] != "0 B"
