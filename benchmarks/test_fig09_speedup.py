"""Benchmark: regenerate Figure 9 (speedup over no-prefetch baseline)."""

from conftest import run_once

from repro.experiments import speedup


def test_figure9_speedup(benchmark, record_exhibit):
    result = run_once(benchmark, speedup.run)
    record_exhibit(result)

    gmean = result.row_for("gmean")
    by_mech = dict(zip(result.headers[1:], [float(v) for v in gmean[1:]]))

    # Every scheme helps on average.
    for mech, spd in by_mech.items():
        assert spd > 1.0, mech

    # Paper ordering: complete control-flow delivery beats L1-I-only.
    assert by_mech["Boomerang"] > by_mech["FDIP"]
    assert by_mech["Boomerang"] > by_mech["Next Line"]
    assert by_mech["Confluence"] > by_mech["SHIFT"]

    # Boomerang is Confluence-class (paper: within ~1%; we allow a band —
    # see EXPERIMENTS.md on the OLTP deviation).
    assert by_mech["Boomerang"] > by_mech["Confluence"] - 0.02

    # Paper headline: Boomerang ~+27.5% over baseline. Allow a wide band;
    # the shape (double-digit gain) is the reproduced claim.
    assert 1.10 < by_mech["Boomerang"] < 1.80
