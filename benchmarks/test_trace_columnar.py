"""Bench guard: columnar trace generation + iteration vs the tuple baseline.

The columnar refactor pays a per-record cost to append into six ``array``
columns; the walker offsets it by precompiling per-block walk info (no
frozen-dataclass attribute reads in the loop) and the columnar
``summarize`` replaces the per-record Python loop with whole-column
passes. This guard pins the net effect: over the quick workload set,
generating **and** summarizing a columnar trace must be no slower than
the seed repo's tuple-list walker and tuple summarize.

The baseline is the seed implementation kept verbatim
(``tests/tuple_baseline.py`` — shared with the bit-identical equivalence
test in ``tests/test_trace.py``), so the comparison stays honest as the
columnar side evolves.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.workloads.builder import build_cfg
from repro.workloads.profiles import ALL_PROFILES
from repro.workloads.trace import generate_trace, summarize
from repro.workloads.tracestore import trace_seed

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from tuple_baseline import tuple_summarize, tuple_walk  # noqa: E402

QUICK_SCALE = 0.25

#: Generous noise margin: the measured ratio is ~0.9 (columnar ahead), so
#: tripping this means a real regression, not scheduler jitter.
ALLOWED_RATIO = 1.25

ROUNDS = 4


def _time_quick_set(*fns):
    """Best-of-ROUNDS total wall-clock per candidate over the quick set.

    Candidates run *interleaved* (tuple round, columnar round, tuple
    round, ...) so a drifting machine load shifts both measurements
    instead of biasing whichever side happened to run first; CFGs are
    prebuilt once and shared, so only the trace path is timed.
    """
    prepared = []
    for profile in ALL_PROFILES:
        scaled = profile.scaled(QUICK_SCALE)
        prepared.append(
            (build_cfg(scaled), scaled.default_trace_instrs, trace_seed(scaled))
        )
    best = [float("inf")] * len(fns)
    for _ in range(ROUNDS):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            for cfg, length, seed in prepared:
                fn(cfg, length, seed)
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def test_columnar_generation_and_iteration_not_slower():
    def tuple_side(cfg, length, seed):
        records, _ = tuple_walk(cfg, length, seed)
        tuple_summarize(records)

    def columnar_side(cfg, length, seed):
        trace = generate_trace(cfg, length, seed=seed)
        summarize(trace)

    t_tuple, t_columnar = _time_quick_set(tuple_side, columnar_side)
    ratio = t_columnar / t_tuple
    print(
        f"\nquick-set gen+summarize: tuple {t_tuple * 1e3:.0f}ms, "
        f"columnar {t_columnar * 1e3:.0f}ms (ratio {ratio:.2f})"
    )
    assert ratio <= ALLOWED_RATIO, (
        f"columnar trace path regressed: {t_columnar * 1e3:.0f}ms vs tuple "
        f"baseline {t_tuple * 1e3:.0f}ms (ratio {ratio:.2f} > {ALLOWED_RATIO})"
    )
