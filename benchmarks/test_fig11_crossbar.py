"""Benchmark: regenerate Figure 11 (crossbar / low-latency LLC)."""

from conftest import run_once

from repro.experiments import crossbar, speedup


def test_figure11_crossbar(benchmark, record_exhibit):
    result = run_once(benchmark, crossbar.run)
    record_exhibit(result)

    gmean = result.row_for("gmean")
    by_mech = dict(zip(result.headers[1:], [float(v) for v in gmean[1:]]))

    # Ordering is preserved at the lower latency.
    assert by_mech["Boomerang"] > by_mech["Next Line"]
    assert by_mech["Boomerang"] >= by_mech["Confluence"] - 0.02
    for mech, value in by_mech.items():
        assert value > 1.0, mech

    # Paper: absolute gains shrink vs the mesh (cheaper misses).
    mesh = speedup.run()
    mesh_gmean = dict(zip(mesh.headers[1:], [float(v) for v in mesh.row_for("gmean")[1:]]))
    assert by_mech["Boomerang"] < mesh_gmean["Boomerang"] + 0.02
