"""Bench guard: batched grid execution vs per-cell, on the dense grid.

Runs one workload's full column of the ROADMAP's ``dense-latency-btb``
sweep at quick scale — 120 cells: 8 LLC latency points × 5 BTB sizes for
FDIP and Boomerang plus the 40 matched no-prefetch baselines — once
per-cell and once through :class:`~repro.core.batch.BatchedEngine`, both
on the serial backend with fresh runtimes (no cache hits on either side),
and pins the batched speedup. One workload keeps the guard to ~2-3
minutes; batching groups by workload, so each column is an independent
sample of the same effect and the grid's config mix is fully represented.

The measured speedup is ~1.2-1.3x. Batching is **bit-identical** to the
per-cell engine, and ~85% of per-cell time is active per-lane work (TAGE
lookups, wrong-path walk, the fetch loop) that batching cannot elide —
its wins are the shared trace predecode, the fused gate loop and
fast-forwarding jointly-idle stretches, which is why dense columns with
idle-heavy cells (high-latency baselines) gain most and latency-1 cells
roughly break even. See docs/architecture.md for the full accounting. The
floor below is set with generous CI headroom: tripping it means batching
*regressed*, not that a runner was slow.

Besides the assertion, the run leaves machine-readable numbers in
``benchmarks/results/BENCH_batched_grid.json`` (cells/sec per mode,
wall-clock, batch width, speedup) — the CI benchmarks job publishes them
in its step summary.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.experiments.common import get_scale
from repro.experiments.sweeps import get_sweep
from repro.runtime import DEFAULT_BATCH_WIDTH, ExperimentRuntime
from repro.workloads.workload import load_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The measured column: one paper workload's slice of the dense grid.
WORKLOAD = "apache"

#: Measured ~1.3x on an idle machine; anything above 1.0 means batching
#: pays for itself. The gap to the measurement absorbs CI-runner noise.
SPEEDUP_FLOOR = 1.05


def _dense_column(workload: str) -> list:
    """The deduplicated dense-grid jobs for one workload, in grid order."""
    spec = get_sweep("dense-latency-btb")
    scale = get_scale("quick")
    seen, jobs = set(), []
    for job in spec.jobs(scale):
        if job.workload != workload or job.key in seen:
            continue
        seen.add(job.key)
        jobs.append(job)
    return jobs


def test_batched_dense_grid_faster_than_per_cell():
    jobs = _dense_column(WORKLOAD)
    assert len(jobs) == 120  # 2 mechanisms x 8 latencies x 5 BTBs + 40 baselines
    scale = get_scale("quick")
    # Build the workload (CFG + columnar trace) once, outside both
    # timings — both modes would otherwise charge it to whoever ran first.
    load_workload(WORKLOAD, scale=scale.workload_scale)

    start = time.perf_counter()
    per_cell = ExperimentRuntime().run_many(jobs)
    t_cell = time.perf_counter() - start

    batched_runtime = ExperimentRuntime(batch=True, batch_width=DEFAULT_BATCH_WIDTH)
    start = time.perf_counter()
    batched = batched_runtime.run_many(jobs)
    t_batch = time.perf_counter() - start

    identical = [r.raw for r in per_cell] == [r.raw for r in batched]
    speedup = t_cell / t_batch
    payload = {
        "sweep": "dense-latency-btb",
        "scale": "quick",
        "workload": WORKLOAD,
        "cells": len(jobs),
        "batch_width": DEFAULT_BATCH_WIDTH,
        "batch_units": batched_runtime.backend_telemetry.get("batch_units"),
        "per_cell": {
            "seconds": round(t_cell, 2),
            "cells_per_sec": round(len(jobs) / t_cell, 2),
        },
        "batched": {
            "seconds": round(t_batch, 2),
            "cells_per_sec": round(len(jobs) / t_batch, 2),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": identical,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_batched_grid.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{WORKLOAD} dense column ({len(jobs)} cells): per-cell "
        f"{t_cell:.1f}s, batched {t_batch:.1f}s "
        f"(speedup {speedup:.2f}x, width {DEFAULT_BATCH_WIDTH}) -> {path}"
    )

    assert identical, "batched results diverged from per-cell — never trade correctness"
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched execution regressed: {t_batch:.1f}s vs per-cell "
        f"{t_cell:.1f}s (speedup {speedup:.2f}x < floor {SPEEDUP_FLOOR}x)"
    )
