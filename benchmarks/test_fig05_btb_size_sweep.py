"""Benchmark: regenerate Figure 5 (FDIP coverage vs BTB size and latency)."""

from conftest import run_once

from repro.experiments import btb_size_sweep


def test_figure5_btb_size_sweep(benchmark, record_exhibit):
    result = run_once(benchmark, btb_size_sweep.run)
    record_exhibit(result)

    rows = {row[0]: [float(v) for v in row[1:]] for row in result.rows}
    largest = rows[max(rows, key=lambda k: int(k[:-1]))]
    smallest = rows[min(rows, key=lambda k: int(k[:-1]))]

    # Bigger BTBs cover at least as much, at every latency point.
    for large_cov, small_cov in zip(largest, smallest):
        assert large_cov >= small_cov - 0.03

    # Paper: the 32K -> 2K drop is modest (~12%), not a collapse.
    drops = [l - s for l, s in zip(largest, smallest)]
    assert max(drops) < 0.35
    # Coverage stays useful even with the small BTB at high latency.
    assert smallest[-1] > 0.35
