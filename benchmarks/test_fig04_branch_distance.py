"""Benchmark: regenerate Figure 4 (taken-conditional jump distances)."""

from conftest import run_once

from repro.experiments import branch_distance


def test_figure4_branch_distance(benchmark, record_exhibit):
    result = run_once(benchmark, branch_distance.run)
    record_exhibit(result)

    within4_column = result.headers.index("<=4")
    for row in result.rows:
        # Paper: ~92% of taken conditionals jump at most 4 blocks.
        assert float(row[within4_column]) > 0.85, row[0]
        # CDF is monotone and ends near 1.
        cdf = [float(v) for v in row[1:]]
        assert all(a <= b + 1e-9 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] > 0.95
