"""Benchmark: regenerate Figure 7 (squashes per kilo-instruction)."""

from conftest import run_once

from repro.experiments import squashes


def test_figure7_squashes(benchmark, record_exhibit):
    result = run_once(benchmark, squashes.run)
    record_exhibit(result, float_fmt="{:.2f}")

    avg = {row[1]: row for row in result.rows if row[0] == "avg"}

    # L1-I-only prefetchers leave BTB-miss squashes intact.
    for mech in ("Next Line", "DIP", "FDIP", "SHIFT"):
        assert float(avg[mech][3]) > 1.0, mech

    # The complete schemes eliminate (most of) them. Confluence's fill is
    # prefetch-driven, so its residual grows at small scales (less stream
    # recurrence); Boomerang detects every miss and stays at zero.
    assert float(avg["Boomerang"][3]) == 0.0
    assert float(avg["Confluence"][3]) < 0.5 * float(avg["FDIP"][3])

    # Paper: ~2x total squash reduction for complete schemes.
    assert float(avg["Boomerang"][4]) < 0.75 * float(avg["FDIP"][4])

    # DB2 is BTB-miss dominated in the baseline schemes (paper: ~75%).
    db2_fdip = next(
        row for row in result.rows if row[0] == "db2" and row[1] == "FDIP"
    )
    assert float(db2_fdip[3]) > 0.5 * float(db2_fdip[2])
