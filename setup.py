"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to this
shim (``setup.py develop``), which needs nothing beyond setuptools.
"""

from setuptools import setup

setup()
