#!/usr/bin/env python3
"""Boomerang beyond the paper grid: the four extended scenario profiles.

The paper evaluates on six server workloads; this example runs the
mechanisms that tell the Boomerang story (baseline, FDIP, Confluence,
Boomerang) on the four *extended* scenarios — microservice RPC fan-out,
bytecode-interpreter dispatch, ML-inference serving, and a compiler pass
pipeline — and prints each workload's trace calibration next to its
results, so the connection between a scenario's control-flow stressor and
the mechanisms' behaviour is visible (e.g. mlserve's straight-line fetch
leaves little for any prefetcher; interp's indirect dispatch squashes on
targets, not BTB misses).

Builds go through the persistent trace store when ``REPRO_CACHE_DIR`` (or
``REPRO_TRACE_STORE``) is set — re-runs then skip CFG+trace generation.
``REPRO_WORKLOAD_SET=all`` makes the ``repro.experiments`` figure modules
sweep these same profiles.

Run time: ~1 min at the default quick scale.
"""

from repro import Simulator, load_workload, make_config
from repro.workloads import EXTENDED_PROFILES

MECHANISMS = ("none", "fdip", "confluence", "boomerang")
SCALE = 0.25


def main() -> None:
    for profile in EXTENDED_PROFILES:
        workload = load_workload(profile.name, scale=SCALE)
        summary = workload.trace.summary()
        print(f"=== {profile.name}: {profile.description}")
        print(
            f"    trace: {summary.n_instrs} instrs, "
            f"avg block {summary.avg_bb_instrs:.1f} instrs, "
            f"{summary.taken_rate:.0%} taken, "
            f"{summary.cond_frac:.0%} conditional, "
            f"hot code {summary.footprint_kb:.0f} KB"
        )
        base = None
        print(f"{'mechanism':>12s} {'IPC':>7s} {'speedup':>8s} {'sq/KI':>7s} "
              f"{'btb sq/KI':>9s}")
        for mech in MECHANISMS:
            result = Simulator(workload, make_config(mech)).run()
            if base is None:
                base = result
            print(f"{mech:>12s} {result.ipc:>7.3f} "
                  f"{result.speedup_over(base):>8.3f} "
                  f"{result.squashes_per_kilo:>7.2f} "
                  f"{result.btb_squashes_per_kilo:>9.2f}")
        print()


if __name__ == "__main__":
    main()
