#!/usr/bin/env python3
"""Metadata storage report (paper Section VI-D).

Purely analytic — no simulation. Shows each scheme's dedicated metadata,
including how Confluence/SHIFT costs grow as more distinct workloads share
the CMP (each needs its own LLC-resident history), while Boomerang stays
at 540 bytes regardless.

Run time: <1 s.
"""

from repro.analysis import format_table, human_bytes
from repro.analysis.storage import storage_comparison
from repro.config import SimConfig


def main() -> None:
    cfg = SimConfig()
    for n_workloads in (1, 2, 4):
        rows = []
        for cost in storage_comparison(cfg, n_workloads=n_workloads):
            rows.append(
                [
                    cost.mechanism,
                    human_bytes(cost.per_core_bytes),
                    human_bytes(cost.llc_carve_bytes),
                    human_bytes(cost.total_bytes),
                ]
            )
        print(format_table(
            ["mechanism", "per_core", "llc_carve", "total"],
            rows,
            title=f"Dedicated metadata with {n_workloads} co-scheduled workload(s)",
        ))
        print()
    boom = next(c for c in storage_comparison(cfg) if c.mechanism == "boomerang")
    conf = next(c for c in storage_comparison(cfg, 4) if c.mechanism == "confluence")
    print(f"Boomerang stays at {human_bytes(boom.total_bytes)}; at 4 workloads "
          f"Confluence needs {human_bytes(conf.total_bytes)} "
          f"({conf.total_bytes / boom.total_bytes:,.0f}x more).")


if __name__ == "__main__":
    main()
