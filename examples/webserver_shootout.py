#!/usr/bin/env python3
"""Web-frontend shootout: every control-flow delivery scheme on Apache+Zeus.

Reproduces the Figure 7/8/9 story on the two SPECweb99-style workloads:
the L1-I-only prefetchers (Next-Line, DIP, FDIP, SHIFT) leave BTB-miss
squashes untouched; the complete schemes (Confluence, Boomerang) eliminate
them, and Boomerang does it with 540 bytes instead of hundreds of KB.

Run time: ~40 s.
"""

from repro import MECHANISMS, Simulator, load_workload, make_config
from repro.analysis import format_bar_chart, human_bytes
from repro.analysis.storage import storage_comparison
from repro.config import SimConfig

WORKLOADS = ("apache", "zeus")
SCALE = 0.5


def main() -> None:
    storage = {c.mechanism: c.total_bytes for c in storage_comparison(SimConfig())}
    for name in WORKLOADS:
        workload = load_workload(name, scale=SCALE)
        base = Simulator(workload, make_config("none")).run()
        print(f"=== {name} (baseline IPC {base.ipc:.3f}) ===")
        labels, speedups = [], []
        print(f"{'mechanism':>12s} {'speedup':>8s} {'sq/KI':>7s} {'btb/KI':>7s} "
              f"{'coverage':>9s} {'metadata':>10s}")
        for mech in MECHANISMS:
            if mech == "none":
                continue
            res = Simulator(workload, make_config(mech)).run()
            print(f"{mech:>12s} {res.speedup_over(base):>8.3f} "
                  f"{res.squashes_per_kilo:>7.2f} {res.btb_squashes_per_kilo:>7.2f} "
                  f"{res.coverage_over(base):>9.1%} "
                  f"{human_bytes(storage.get(mech, 0)):>10s}")
            labels.append(mech)
            speedups.append(res.speedup_over(base))
        print()
        print(format_bar_chart(labels, speedups, title=f"{name}: speedup over baseline"))
        print()


if __name__ == "__main__":
    main()
