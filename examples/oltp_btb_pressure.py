#!/usr/bin/env python3
"""OLTP BTB pressure study: why a 2K-entry BTB breaks on database code.

The DB2-style workload carries the largest static branch footprint of the
suite (the paper: ~75% of DB2's squashes are BTB misses). This example
sweeps the BTB from 1K to 32K entries on the baseline core to expose the
thrash, then shows Boomerang recovering the 2K-entry design point by
prefilling misses via predecode — the paper's central claim.

Run time: ~40 s.
"""

from repro import Simulator, load_workload, make_config
from repro.analysis import format_table

BTB_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)


def main() -> None:
    workload = load_workload("db2", scale=0.5)
    summary = workload.trace.summary()
    print(f"db2-like workload: {summary.unique_basic_blocks} live basic blocks "
          f"(= static branches) vs 2048 BTB entries\n")

    rows = []
    base_2k = Simulator(workload, make_config("none")).run()
    for entries in BTB_SIZES:
        cfg = make_config("none").with_btb_entries(entries)
        res = Simulator(workload, cfg).run()
        rows.append(
            [
                f"{entries // 1024}K",
                res.ipc,
                res.speedup_over(base_2k),
                res.btb_squashes_per_kilo,
                res.mispredict_squashes_per_kilo,
            ]
        )
    print(format_table(
        ["btb", "ipc", "speedup_vs_2K", "btb_squash_pki", "mispredict_pki"],
        rows,
        title="Baseline core vs BTB size",
    ))

    boom = Simulator(workload, make_config("boomerang")).run()
    print()
    print("Boomerang at the 2K-entry design point:")
    print(f"  IPC {boom.ipc:.3f}  (speedup over 2K baseline: "
          f"{boom.speedup_over(base_2k):.3f}x)")
    print(f"  BTB-miss squashes/KI: {boom.btb_squashes_per_kilo:.2f} "
          f"(baseline: {base_2k.btb_squashes_per_kilo:.2f})")
    print(f"  BTB prefills from predecode: "
          f"{boom.raw['btb_pfb_inserts']:.0f} staged, "
          f"{boom.raw['btb_pfb_hits']:.0f} consumed")


if __name__ == "__main__":
    main()
