#!/usr/bin/env python3
"""One machine pretending to be three: a distributed sweep via the broker.

Spawns two stand-alone worker processes (`python -m repro.runtime worker`)
against a temporary shared cache directory, then submits the `smoke`
sweep through the broker backend with coordinator stealing *disabled* —
so every one of the grid's simulations must be stolen, executed, and
published by one of the two workers through the file-based queue under
``<cache-dir>/queue/``. Prints the sweep table, the per-worker telemetry,
and the queue's final state.

On real clusters the recipe is the same, minus the subprocess bookkeeping:
point every `worker` and the submitting process at one shared filesystem
path (see docs/runtime.md, "Two-terminal distributed recipe").

Run time: ~1 min.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.experiments.sweeps import get_sweep
from repro.runtime import BrokerQueue, configure_runtime, get_runtime


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-broker-") as cache_dir:
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.runtime", "worker",
                    "--cache-dir", cache_dir,
                    "--worker-id", f"example-w{i}",
                    "--drain", "--max-idle", "20",
                ],
                cwd=Path(__file__).resolve().parents[1],
            )
            for i in (1, 2)
        ]
        try:
            # Keep the submitting process a pure coordinator so the two
            # workers visibly do all the stealing.
            os.environ["REPRO_BROKER_STEAL"] = "0"
            runtime = configure_runtime(cache_dir=cache_dir, backend="broker")
            result = get_sweep("smoke").run("quick")
            print(result.to_table())
            telemetry = get_runtime().backend_telemetry
            print(f"\nexecuted by: {telemetry.get('broker_workers')}")
            print(f"total queue wait {telemetry.get('broker_queue_wait_s')}s, "
                  f"run {telemetry.get('broker_run_s')}s, "
                  f"retries {telemetry.get('broker_retries')}")
            counts = BrokerQueue(cache_dir).counts()
            print(f"queue after the run: {counts}")
            assert runtime.executed == counts["done"]
        finally:
            for worker in workers:
                worker.wait(timeout=60)


if __name__ == "__main__":
    main()
