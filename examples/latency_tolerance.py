#!/usr/bin/env python3
"""Latency tolerance: FDIP coverage vs. LLC distance and predictor quality.

A miniature of the paper's Figure 2 argument: branch-predictor-directed
prefetching keeps covering front-end stalls as the LLC gets slower, and it
barely needs an accurate predictor — conditional targets are so close
(Figure 4) that even never-taken prediction finds most future blocks.

Run time: ~60 s.
"""

from repro import Simulator, load_workload, make_config
from repro.analysis import format_table

LATENCIES = (1, 15, 30, 60)
PREDICTORS = ("tage", "bimodal", "never_taken")
WORKLOAD = "nutch"


def main() -> None:
    workload = load_workload(WORKLOAD, scale=0.5)
    rows = []
    for predictor in PREDICTORS:
        row = [f"FDIP {predictor}"]
        for latency in LATENCIES:
            base_cfg = make_config("none").with_btb_entries(32768)
            base = Simulator(workload, base_cfg.with_llc_latency(latency)).run()
            cfg = make_config("fdip").with_btb_entries(32768)
            cfg = cfg.with_llc_latency(latency).with_predictor(predictor)
            res = Simulator(workload, cfg).run()
            row.append(res.coverage_over(base))
        rows.append(row)
    print(format_table(
        ["series"] + [f"llc={lat}" for lat in LATENCIES],
        rows,
        title=f"Stall-cycle coverage on {WORKLOAD} (32K-entry BTB)",
    ))
    print("\npaper: coverage stays high across the whole latency range, and")
    print("the never-taken predictor retains most of TAGE's coverage.")


if __name__ == "__main__":
    main()
