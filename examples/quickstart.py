#!/usr/bin/env python3
"""Quickstart: simulate Boomerang vs. a no-prefetch baseline.

Builds the Apache-like synthetic web-frontend workload, runs the baseline
core and Boomerang on the identical instruction trace, and reports the
paper's three headline metrics: speedup, squash reduction, and front-end
stall-cycle coverage.

Run time: ~10 s.
"""

from repro import Simulator, load_workload, make_config
from repro.config import SimConfig


def describe(config: SimConfig) -> None:
    """Print the Table I parameters of the simulated core."""
    core, mem = config.core, config.memory
    print("Simulated core (paper Table I):")
    print(f"  {core.fetch_width}-wide OoO, {core.rob_size}-entry ROB")
    print(f"  L1-I: {mem.l1i.size_bytes // 1024} KB / {mem.l1i.assoc}-way, "
          f"{mem.prefetch_buffer_entries}-entry prefetch buffer")
    print(f"  BTB:  {config.btb.entries}-entry, basic-block oriented")
    print(f"  LLC round trip: ~{mem.llc_round_trip} cycles "
          f"({mem.noc.kind} NoC), memory +{mem.memory_latency} cycles")
    print(f"  Predictor: {config.predictor.kind} (TAGE, 8 KB budget)")
    print()


def main() -> None:
    # Scale 0.5 keeps this quick; drop scale for full-fidelity runs.
    workload = load_workload("apache", scale=0.5)
    summary = workload.trace.summary()
    print(f"Workload: {workload.name} — {summary.n_instrs} instructions, "
          f"{summary.footprint_kb:.0f} KB hot code, "
          f"{summary.unique_basic_blocks} basic blocks\n")

    baseline_cfg = make_config("none")
    describe(baseline_cfg)

    baseline = Simulator(workload, baseline_cfg).run()
    boomerang = Simulator(workload, make_config("boomerang")).run()

    print(f"{'metric':<32s} {'baseline':>10s} {'boomerang':>10s}")
    print(f"{'IPC':<32s} {baseline.ipc:>10.3f} {boomerang.ipc:>10.3f}")
    print(f"{'squashes / kilo-instr':<32s} "
          f"{baseline.squashes_per_kilo:>10.2f} {boomerang.squashes_per_kilo:>10.2f}")
    print(f"{'  of which BTB-miss':<32s} "
          f"{baseline.btb_squashes_per_kilo:>10.2f} {boomerang.btb_squashes_per_kilo:>10.2f}")
    print(f"{'front-end stall cycles':<32s} "
          f"{baseline.stall_cycles:>10d} {boomerang.stall_cycles:>10d}")
    print()
    print(f"Boomerang speedup:            {boomerang.speedup_over(baseline):.3f}x")
    print(f"Stall-cycle coverage:         {boomerang.coverage_over(baseline):.1%}")
    print(f"BTB-miss squashes eliminated: "
          f"{1 - boomerang.squashes_btb / max(1, baseline.squashes_btb):.1%}")


if __name__ == "__main__":
    main()
